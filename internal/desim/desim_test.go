package desim

import (
	"math"
	"testing"

	"starperf/internal/hypercube"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
	"starperf/internal/traffic"
)

func s5cfg(kind routing.Kind, v int, rate float64, m int, seed uint64) Config {
	g := stargraph.MustNew(5)
	return Config{
		Top:           g,
		Spec:          routing.MustNew(kind, g, v),
		Policy:        routing.PreferClassA,
		Rate:          rate,
		MsgLen:        m,
		Seed:          seed,
		WarmupCycles:  5000,
		MeasureCycles: 20000,
	}
}

func TestValidation(t *testing.T) {
	g := stargraph.MustNew(4)
	spec := routing.MustNew(routing.Nbc, g, 3)
	bad := []Config{
		{},
		{Top: g},
		{Top: g, Spec: spec, Rate: -1, MsgLen: 8, MeasureCycles: 10},
		{Top: g, Spec: spec, Rate: 0.1, MsgLen: 0, MeasureCycles: 10},
		{Top: g, Spec: spec, Rate: 0.1, MsgLen: 1 << 15, MeasureCycles: 10},
		{Top: g, Spec: spec, Rate: 0.1, MsgLen: 8, MeasureCycles: 0},
		{Top: g, Spec: spec, Rate: 0.1, MsgLen: 8, MeasureCycles: 10, BufCap: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestZeroLoadLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("long zero-load soak")
	}
	// At vanishing load a message sees no contention: latency must be
	// M + h + 1 exactly (one cycle of injection-channel offset), so
	// the mean is M + d̄ + 1.
	for _, m := range []int{8, 32} {
		cfg := s5cfg(routing.EnhancedNbc, 6, 0.00005, m, 1)
		cfg.MeasureCycles = 400000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeasuredDelivered < 500 {
			t.Fatalf("only %d measured messages", res.MeasuredDelivered)
		}
		g := cfg.Top.(*stargraph.Graph)
		want := float64(m) + g.AvgDistance() + 1
		if math.Abs(res.Latency.Mean()-want) > 0.35 {
			t.Fatalf("M=%d zero-load latency %.3f, want ≈%.3f", m, res.Latency.Mean(), want)
		}
		if res.QueueTime.Mean() > 0.05 {
			t.Fatalf("queueing at zero load: %v", res.QueueTime.Mean())
		}
		if res.Latency.N() != uint64(res.MeasuredDelivered) {
			t.Fatal("latency samples != measured deliveries")
		}
	}
}

func TestZeroLoadPerMessageExact(t *testing.T) {
	if testing.Short() {
		t.Skip("long zero-load soak")
	}
	// Each individual zero-load message takes exactly M + h + 1.
	cfg := s5cfg(routing.Nbc, 4, 0.00002, 16, 3)
	cfg.MeasureCycles = 500000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// latency - hops must be constant M+1: variance of
	// (latency − hops) would be 0; check via the identity
	// mean(lat) = M + 1 + mean(hops) and matching min/max spreads.
	wantMean := 16 + 1 + res.HopCount.Mean()
	if math.Abs(res.Latency.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean latency %.6f, want %.6f", res.Latency.Mean(), wantMean)
	}
	if res.Latency.Max()-res.Latency.Min() != res.HopCount.Max()-res.HopCount.Min() {
		t.Fatalf("latency spread %v vs hop spread %v",
			res.Latency.Max()-res.Latency.Min(), res.HopCount.Max()-res.HopCount.Min())
	}
}

func TestHopCountMatchesAvgDistance(t *testing.T) {
	cfg := s5cfg(routing.EnhancedNbc, 6, 0.002, 16, 7)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Top.(*stargraph.Graph)
	if math.Abs(res.HopCount.Mean()-g.AvgDistance()) > 0.05 {
		t.Fatalf("mean hops %.3f, want ≈%.3f (minimal routing, uniform traffic)",
			res.HopCount.Mean(), g.AvgDistance())
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(s5cfg(routing.EnhancedNbc, 9, 0.006, 32, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s5cfg(routing.EnhancedNbc, 9, 0.006, 32, 42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.Mean() != b.Latency.Mean() || a.Generated != b.Generated ||
		a.Delivered != b.Delivered || a.Cycles != b.Cycles {
		t.Fatalf("same seed diverged: %+v vs %+v", a.Latency, b.Latency)
	}
	c, err := Run(s5cfg(routing.EnhancedNbc, 9, 0.006, 32, 43))
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.Mean() == c.Latency.Mean() && a.Generated == c.Generated {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	var prev float64
	for i, rate := range []float64{0.001, 0.005, 0.009} {
		res, err := Run(s5cfg(routing.EnhancedNbc, 6, rate, 32, 9))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Drained {
			t.Fatalf("rate %v did not drain", rate)
		}
		if i > 0 && res.Latency.Mean() <= prev {
			t.Fatalf("latency not increasing with load: %.2f after %.2f at rate %v",
				res.Latency.Mean(), prev, rate)
		}
		prev = res.Latency.Mean()
	}
}

func TestDeadlockFreedomSoak(t *testing.T) {
	// Heavy load just below and beyond saturation must never trip the
	// no-progress detector for any of the three algorithms.
	for _, kind := range []routing.Kind{routing.NHop, routing.Nbc, routing.EnhancedNbc} {
		v := 4
		if kind == routing.EnhancedNbc {
			v = 6
		}
		for _, rate := range []float64{0.01, 0.02} {
			cfg := s5cfg(kind, v, rate, 32, 1234)
			cfg.WarmupCycles = 2000
			cfg.MeasureCycles = 10000
			cfg.DrainCycles = 20000
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Deadlocked {
				t.Fatalf("%v deadlocked at rate %v", kind, rate)
			}
			if res.Delivered == 0 {
				t.Fatalf("%v delivered nothing at rate %v", kind, rate)
			}
		}
	}
}

func TestStarvationDetectorFires(t *testing.T) {
	// Failure injection: a hand-built spec with a single escape level
	// cannot route messages whose escape window is empty, so the
	// network clogs and the progress detector must fire rather than
	// spin forever.
	g := stargraph.MustNew(4)
	cfg := Config{
		Top:               g,
		Spec:              routing.Spec{Kind: routing.Nbc, V1: 0, V2: 1, MaxNeg: topology.MaxNegativeHops(g.Diameter())},
		Rate:              0.02,
		MsgLen:            8,
		Seed:              5,
		WarmupCycles:      0,
		MeasureCycles:     5000,
		DrainCycles:       400000,
		DeadlockThreshold: 3000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("detector did not fire on a broken routing spec")
	}
	if !res.Saturated() {
		t.Fatal("deadlocked run must report saturated")
	}
}

func TestMultiplexingBounds(t *testing.T) {
	res, err := Run(s5cfg(routing.EnhancedNbc, 6, 0.008, 32, 77))
	if err != nil {
		t.Fatal(err)
	}
	if res.Multiplexing < 1 || res.Multiplexing > 6 {
		t.Fatalf("multiplexing %v outside [1,V]", res.Multiplexing)
	}
	var samples uint64
	for _, c := range res.VCBusyHist {
		samples += c
	}
	if samples == 0 {
		t.Fatal("no VC occupancy samples")
	}
}

func TestClassUsage(t *testing.T) {
	res, err := Run(s5cfg(routing.EnhancedNbc, 6, 0.005, 32, 11))
	if err != nil {
		t.Fatal(err)
	}
	if res.ClassAUse == 0 || res.ClassBUse == 0 {
		t.Fatalf("expected both classes used: a=%d b=%d", res.ClassAUse, res.ClassBUse)
	}
	var lvl uint64
	for _, c := range res.ClassBLevelUse {
		lvl += c
	}
	if lvl != res.ClassBUse {
		t.Fatalf("level counts %d != class-b uses %d", lvl, res.ClassBUse)
	}
	// NHop uses class b exclusively
	res, err = Run(s5cfg(routing.NHop, 4, 0.005, 32, 11))
	if err != nil {
		t.Fatal(err)
	}
	if res.ClassAUse != 0 || res.ClassBUse == 0 {
		t.Fatalf("NHop class use a=%d b=%d", res.ClassAUse, res.ClassBUse)
	}
}

func TestBlockingRareAtLowLoad(t *testing.T) {
	res, err := Run(s5cfg(routing.EnhancedNbc, 12, 0.0005, 32, 13))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.BlockedAttempts) / float64(res.Attempts)
	if frac > 0.01 {
		t.Fatalf("blocking fraction %v at near-zero load", frac)
	}
}

func TestAccountingInvariants(t *testing.T) {
	res, err := Run(s5cfg(routing.EnhancedNbc, 9, 0.01, 32, 17))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered > res.Generated {
		t.Fatal("delivered more than generated")
	}
	if res.MeasuredDelivered > res.Delivered {
		t.Fatal("measured deliveries exceed deliveries")
	}
	if res.NetLatency.N() != res.Latency.N() || res.QueueTime.N() < res.Latency.N() {
		t.Fatalf("sample counts inconsistent: lat=%d net=%d q=%d",
			res.Latency.N(), res.NetLatency.N(), res.QueueTime.N())
	}
	// Latency = queue + network per message, so means satisfy the
	// same identity only over the same message set; check loosely.
	if res.Latency.Mean() < res.NetLatency.Mean() {
		t.Fatal("total latency below network latency")
	}
}

func TestRandomAnyAndLowestEscapePolicies(t *testing.T) {
	for _, pol := range []routing.Policy{routing.RandomAny, routing.LowestEscapeFirst} {
		cfg := s5cfg(routing.EnhancedNbc, 6, 0.004, 16, 23)
		cfg.Policy = pol
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked || res.MeasuredDelivered == 0 {
			t.Fatalf("policy %v failed: %+v", pol, res)
		}
	}
}

func TestHypercubeRuns(t *testing.T) {
	g := hypercube.MustNew(5)
	cfg := Config{
		Top:           g,
		Spec:          routing.MustNew(routing.EnhancedNbc, g, 5),
		Rate:          0.01,
		MsgLen:        16,
		Seed:          2,
		WarmupCycles:  3000,
		MeasureCycles: 15000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.MeasuredDelivered == 0 || !res.Drained {
		t.Fatalf("hypercube run unhealthy: %+v", res.Latency)
	}
	want := float64(16) + g.AvgDistance() + 1
	if res.Latency.Mean() < want || res.Latency.Mean() > want+30 {
		t.Fatalf("Q5 latency %.2f implausible (zero-load %.2f)", res.Latency.Mean(), want)
	}
}

func TestHotspotSkew(t *testing.T) {
	g := stargraph.MustNew(4)
	cfg := Config{
		Top:           g,
		Spec:          routing.MustNew(routing.EnhancedNbc, g, 5),
		Pattern:       traffic.Hotspot{N: g.N(), Hot: 0, Fraction: 0.2},
		Rate:          0.005,
		MsgLen:        16,
		Seed:          3,
		WarmupCycles:  3000,
		MeasureCycles: 20000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uni := cfg
	uni.Pattern = nil
	resU, err := Run(uni)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Mean() <= resU.Latency.Mean() {
		t.Fatalf("hotspot latency %.2f not above uniform %.2f",
			res.Latency.Mean(), resU.Latency.Mean())
	}
}

func BenchmarkSimS5V6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := s5cfg(routing.EnhancedNbc, 6, 0.008, 32, uint64(i))
		cfg.WarmupCycles = 1000
		cfg.MeasureCycles = 5000
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimS7LowLoad exercises the active-channel transfer loop:
// a 5040-node network at light load where almost every channel is
// idle. The active-set optimisation took this from ~1.6s to ~0.1s
// per run (15×); BenchmarkSimS5V6 (moderate load) gains ~1.5×.
func BenchmarkSimS7LowLoad(b *testing.B) {
	g := stargraph.MustNew(7)
	spec := routing.MustNew(routing.EnhancedNbc, g, 8)
	for i := 0; i < b.N; i++ {
		cfg := Config{
			Top: g, Spec: spec, Rate: 0.0004, MsgLen: 32, Seed: uint64(i),
			WarmupCycles: 200, MeasureCycles: 2000, DrainCycles: 4000,
		}
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
