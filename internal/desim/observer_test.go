package desim

import (
	"bytes"
	"fmt"
	"testing"

	"starperf/internal/faults"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
)

// recordingObserver is a test fake that tallies every callback and
// re-checks the hook ordering contract.
type recordingObserver struct {
	t        *testing.T
	began    int
	ended    int
	cycles   int64
	lastEv   int64 // cycle of the last event seen
	byKind   [5]uint64
	probe    Probe
	channels int
}

func (r *recordingObserver) BeginRun(info RunInfo) {
	r.began++
	r.probe = info.Probe
	r.channels = info.Probe.Channels()
	if info.Nodes*info.Slots != r.channels {
		r.t.Errorf("RunInfo dims inconsistent: %d nodes × %d slots ≠ %d channels",
			info.Nodes, info.Slots, r.channels)
	}
	if info.Cfg.Observer == nil {
		r.t.Error("RunInfo.Cfg lost the Observer field")
	}
}

func (r *recordingObserver) HandleEvent(ev Event) {
	if int(ev.Kind) < len(r.byKind) {
		r.byKind[ev.Kind]++
	}
	if ev.Cycle < r.lastEv {
		r.t.Errorf("event at cycle %d delivered after cycle %d: order broken", ev.Cycle, r.lastEv)
	}
	r.lastEv = ev.Cycle
	if ev.Cycle < r.cycles {
		r.t.Errorf("event for cycle %d after EndCycle(%d): events must precede the tick", ev.Cycle, r.cycles-1)
	}
}

func (r *recordingObserver) EndCycle(cycle int64) {
	if cycle != r.cycles {
		r.t.Errorf("EndCycle(%d) out of sequence, want %d", cycle, r.cycles)
	}
	r.cycles++
}

func (r *recordingObserver) EndRun(res *Result) {
	r.ended++
	if res == nil {
		r.t.Error("EndRun received a nil Result")
	}
}

// TestObserverSeesFullLifecycle attaches the recording fake and
// cross-checks its tallies against the run's own statistics.
func TestObserverSeesFullLifecycle(t *testing.T) {
	s4 := stargraph.MustNew(4)
	rec := &recordingObserver{t: t}
	cfg := Config{
		Top:           s4,
		Spec:          routing.MustNew(routing.EnhancedNbc, s4, 4),
		Policy:        routing.PreferClassA,
		Rate:          0.02,
		MsgLen:        8,
		Seed:          12345,
		WarmupCycles:  1000,
		MeasureCycles: 5000,
		Observer:      rec,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.began != 1 || rec.ended != 1 {
		t.Fatalf("BeginRun/EndRun called %d/%d times, want 1/1", rec.began, rec.ended)
	}
	if rec.cycles != res.Cycles {
		t.Errorf("EndCycle ticked %d times, Result.Cycles = %d", rec.cycles, res.Cycles)
	}
	if rec.byKind[EvGenerate] != uint64(res.Generated) {
		t.Errorf("observed %d generate events, Result.Generated = %d", rec.byKind[EvGenerate], res.Generated)
	}
	if rec.byKind[EvDeliver] != uint64(res.Delivered) {
		t.Errorf("observed %d deliver events, Result.Delivered = %d", rec.byKind[EvDeliver], res.Delivered)
	}
	if rec.byKind[EvInject] < rec.byKind[EvDeliver] {
		t.Errorf("fewer injections (%d) than deliveries (%d)", rec.byKind[EvInject], rec.byKind[EvDeliver])
	}
	// One grant per network hop plus the ejection grant per delivered
	// message: grants strictly exceed deliveries on any multi-hop
	// topology.
	if rec.byKind[EvGrant] <= rec.byKind[EvDeliver] {
		t.Errorf("grants (%d) not above deliveries (%d)", rec.byKind[EvGrant], rec.byKind[EvDeliver])
	}
	if res.BlockedAttempts > 0 && rec.byKind[EvBlock] == 0 {
		t.Error("run blocked but no EvBlock delivered to the observer")
	}
	if rec.byKind[EvBlock] > uint64(res.BlockedAttempts) {
		t.Errorf("more block episodes (%d) than blocked attempts (%d)", rec.byKind[EvBlock], res.BlockedAttempts)
	}
	// EvBlock stays out of the Result.Trace stream.
	for _, ev := range res.Trace {
		if ev.Kind == EvBlock {
			t.Fatal("EvBlock leaked into Result.Trace")
		}
	}
}

// TestObserverDoesNotPerturb is the passivity gate behind the
// Observer contract: attaching an observer must leave the Result —
// fingerprint and full trace — byte-identical to an unobserved run,
// across the same topology/routing matrix as the determinism test.
func TestObserverDoesNotPerturb(t *testing.T) {
	s4 := stargraph.MustNew(4)
	faultPlan, err := faults.NewPlan(s4, 97, faults.Options{FailLinks: 1, Flaps: 1,
		FlapPeriod: 512, FlapDown: 128})
	if err != nil {
		t.Fatal(err)
	}
	tops := []struct {
		name string
		top  topology.Topology
		v    int
	}{
		{"S4", s4, 4},
		{"S4-faulted", faults.MustApply(s4, faultPlan), 6},
	}
	for _, tc := range tops {
		for _, kind := range []routing.Kind{routing.NHop, routing.EnhancedNbc} {
			t.Run(fmt.Sprintf("%s/%s", tc.name, kind), func(t *testing.T) {
				cfg := Config{
					Top:           tc.top,
					Spec:          routing.MustNew(kind, tc.top, tc.v),
					Policy:        routing.PreferClassA,
					Rate:          0.02,
					MsgLen:        8,
					Seed:          12345,
					WarmupCycles:  1000,
					MeasureCycles: 5000,
					TraceCap:      64,
				}
				plain, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Observer = &recordingObserver{t: t}
				observed, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fingerprint(t, plain), fingerprint(t, observed)) {
					t.Fatal("attaching an observer changed the Result fingerprint")
				}
				if len(plain.Trace) != len(observed.Trace) {
					t.Fatalf("trace lengths differ: %d without observer, %d with", len(plain.Trace), len(observed.Trace))
				}
				for i := range plain.Trace {
					if plain.Trace[i] != observed.Trace[i] {
						t.Fatalf("trace event %d differs: %+v vs %+v", i, plain.Trace[i], observed.Trace[i])
					}
				}
			})
		}
	}
}
