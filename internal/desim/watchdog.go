package desim

import "fmt"

// The progress watchdog ends runs that can no longer produce useful
// measurements — a global no-flit-advanced window (the deadlock
// detector in the main loop) or a single over-age message
// (Config.MaxMsgAge; livelock and fault-induced starvation) — and
// leaves a diagnosis in the Result instead of burning cycles to the
// drain limit: Aborted, AbortReason, StallCycle and the oldest
// in-flight message's reconstructed route in StallTrace.

// watchdogEvery is the cadence of the over-age scan. The scan walks
// the per-VC owner table (O(N·V) pointers), so amortised over the
// window it costs well under one owner probe per cycle.
const watchdogEvery = 1024

// abortRun records a graceful watchdog abort. The caller returns from
// the event loop right after; finish() then seals the usual
// statistics so partial measurements stay readable.
func (nw *network) abortRun(reason string) {
	nw.res.Aborted = true
	nw.res.AbortReason = reason
	nw.res.StallCycle = nw.cycle
	nw.res.StallTrace = nw.stallTrace()
}

// checkOverAge fires the over-age half of the watchdog: true aborts
// the run because some message has been in the network longer than
// Config.MaxMsgAge cycles.
func (nw *network) checkOverAge() bool {
	m := nw.oldestInFlight()
	if m == nil {
		return false
	}
	age := nw.cycle - m.injCycle
	if age <= nw.cfg.MaxMsgAge {
		return false
	}
	nw.abortRun(fmt.Sprintf("message %d (node %d → %d) in flight for %d cycles (limit %d)",
		m.id, m.src, m.dst, age, nw.cfg.MaxMsgAge))
	return true
}

// oldestInFlight returns the injected message that has been in the
// network longest (ties broken by generation id, so the answer is
// unique and deterministic), or nil when nothing is in flight. Every
// in-flight message owns at least its head virtual channel, so the
// owner table enumerates them all.
func (nw *network) oldestInFlight() *message {
	var oldest *message
	for _, m := range nw.owner {
		if m == nil || m == oldest {
			continue
		}
		if oldest == nil || m.injCycle < oldest.injCycle ||
			(m.injCycle == oldest.injCycle && m.id < oldest.id) {
			oldest = m
		}
	}
	return oldest
}

// stallTrace reconstructs the route of the oldest in-flight message
// from the live virtual-channel chains — the same Event vocabulary as
// Config.TraceCap tracing, but rebuilt after the fact so it is
// available regardless of trace configuration: one EvGenerate, one
// EvInject, then an EvGrant per still-held channel in acquisition
// order, each stamped with the cycle the grant happened.
func (nw *network) stallTrace() []Event {
	m := nw.oldestInFlight()
	if m == nil {
		return nil
	}
	var chain []int32 // head channel first, injection channel last
	for gvc := m.headVC; gvc >= 0; gvc = nw.prev[gvc] {
		chain = append(chain, gvc)
	}
	ev := make([]Event, 0, len(chain)+1)
	ev = append(ev, Event{Cycle: m.genCycle, Kind: EvGenerate, Msg: m.id, Node: int32(m.src), VC: -1})
	for i := len(chain) - 1; i >= 0; i-- {
		gvc := chain[i]
		if i == len(chain)-1 {
			ev = append(ev, Event{Cycle: m.injCycle, Kind: EvInject, Msg: m.id,
				Node: int32(m.src), VC: gvc})
			continue
		}
		ev = append(ev, Event{Cycle: nw.grantCycle[gvc], Kind: EvGrant, Msg: m.id,
			Node: int32(nw.nodeOfChan(gvc / int32(nw.v))), VC: gvc})
	}
	return ev
}
