package desim

import (
	"math"
	"testing"

	"starperf/internal/routing"
	"starperf/internal/traffic"
)

func TestVariableLengthConservation(t *testing.T) {
	cfg := s5cfg(routing.EnhancedNbc, 6, 0.006, 32, 3)
	cfg.LenDist = traffic.BimodalLen{Short: 8, Long: 56, PLong: 0.5}
	cfg.Paranoid = true
	cfg.ParanoidEvery = 16
	cfg.WarmupCycles = 2000
	cfg.MeasureCycles = 12000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.MeasuredDelivered == 0 {
		t.Fatalf("unhealthy variable-length run: %+v", res.Latency)
	}
}

func TestBimodalVsFixedAtEqualMean(t *testing.T) {
	// Equal mean length (32), heavily mixed (8 vs 104 flits). The
	// mean-latency effect of length variance is small and
	// load-dependent (short messages pipeline faster, offsetting the
	// extra queueing at light load; measured ≈ +2–3% at 0.013), but
	// the latency *spread* must rise dramatically and the mean must
	// not improve once contention dominates.
	fixed := s5cfg(routing.EnhancedNbc, 6, 0.013, 32, 17)
	rf, err := Run(fixed)
	if err != nil {
		t.Fatal(err)
	}
	bimodal := fixed
	bimodal.LenDist = traffic.BimodalLen{Short: 8, Long: 104, PLong: 0.25}
	rb, err := Run(bimodal)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Latency.StdDev() < 1.5*rf.Latency.StdDev() {
		t.Fatalf("bimodal latency sd %.2f not well above fixed %.2f",
			rb.Latency.StdDev(), rf.Latency.StdDev())
	}
	if rb.Latency.Mean() < 0.98*rf.Latency.Mean() {
		t.Fatalf("bimodal mean %.2f clearly below fixed %.2f at heavy load",
			rb.Latency.Mean(), rf.Latency.Mean())
	}
}

func TestLengthDistMoments(t *testing.T) {
	rng := traffic.NewRNG(9)
	dists := []traffic.LengthDist{
		traffic.FixedLen{M: 32},
		traffic.BimodalLen{Short: 8, Long: 56, PLong: 0.5},
		traffic.UniformLen{Min: 16, Max: 48},
	}
	for _, d := range dists {
		var sum, sum2 float64
		const n = 200000
		for i := 0; i < n; i++ {
			x := float64(d.Sample(rng))
			sum += x
			sum2 += x * x
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if math.Abs(mean-d.Mean()) > 0.05*math.Max(d.Mean(), 1) {
			t.Fatalf("%T: sampled mean %v, declared %v", d, mean, d.Mean())
		}
		if math.Abs(variance-d.Variance()) > 0.05*math.Max(d.Variance(), 1) {
			t.Fatalf("%T: sampled variance %v, declared %v", d, variance, d.Variance())
		}
	}
}

func TestChannelBalanceUniformVsHotspot(t *testing.T) {
	if testing.Short() {
		t.Skip("hotspot soak is slow")
	}
	// Under uniform traffic the star's edge symmetry spreads load
	// evenly over channels (the assumption behind eq. 3); a hotspot
	// skews it.
	uni := s5cfg(routing.EnhancedNbc, 6, 0.008, 16, 29)
	ru, err := Run(uni)
	if err != nil {
		t.Fatal(err)
	}
	if ru.ChannelGrantCV > 0.15 {
		t.Fatalf("uniform traffic channel CV %v too high", ru.ChannelGrantCV)
	}
	// empirical λc must match eq. 3: λg·d̄/(n−1)
	want := 0.008 * 3.7142857 / 4
	if math.Abs(ru.ChannelRate-want) > 0.15*want {
		t.Fatalf("empirical channel rate %v, eq. 3 predicts %v", ru.ChannelRate, want)
	}
	hot := uni
	hot.Pattern = traffic.Hotspot{N: 120, Hot: 0, Fraction: 0.4}
	rh, err := Run(hot)
	if err != nil {
		t.Fatal(err)
	}
	if rh.ChannelGrantCV < 2*ru.ChannelGrantCV {
		t.Fatalf("hotspot CV %v not clearly above uniform CV %v",
			rh.ChannelGrantCV, ru.ChannelGrantCV)
	}
}

func TestBurstyArrivalsRaiseLatency(t *testing.T) {
	// At equal mean rate, MMPP on/off bursts inflate queueing relative
	// to Poisson — the sensitivity of model assumption (b).
	base := s5cfg(routing.EnhancedNbc, 6, 0.01, 32, 53)
	rp, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	bursty := base
	bursty.NewArrivals = func(rng *traffic.RNG, rate float64) traffic.Arrivals {
		return traffic.NewOnOff(rng, rate, 6, 600)
	}
	rb, err := Run(bursty)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Latency.Mean() <= 1.05*rp.Latency.Mean() {
		t.Fatalf("bursty latency %.2f not clearly above Poisson %.2f",
			rb.Latency.Mean(), rp.Latency.Mean())
	}
	// mean offered rate must be comparable (runs differ in length
	// because the bursty run takes longer to drain)
	rateP := float64(rp.Generated) / float64(rp.Cycles)
	rateB := float64(rb.Generated) / float64(rb.Cycles)
	if rateB < 0.9*rateP || rateB > 1.1*rateP {
		t.Fatalf("offered rate mismatch: %.5f vs %.5f", rateB, rateP)
	}
}
