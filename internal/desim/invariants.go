package desim

import (
	"errors"
	"fmt"
)

// ErrInvariant classifies simulator self-check failures: a wrapped
// ErrInvariant means the wormhole bookkeeping itself is broken (a
// simulator bug), never that the caller's Config was wrong.
var ErrInvariant = errors.New("desim: invariant violated")

// invariantErrf builds one classified invariant-violation error.
func invariantErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvariant, fmt.Sprintf(format, args...))
}

// checkInvariants validates the structural invariants of the
// simulation state; it is run every Config.ParanoidEvery cycles when
// Config.Paranoid is set and returns a descriptive error on the first
// violation. The checks are the formal counterparts of the wormhole
// bookkeeping rules:
//
//   - flits never appear or vanish inside a channel: the downstream
//     buffer population equals sent − drained and respects the buffer
//     capacity (ejection channels deliver immediately and keep an
//     empty buffer);
//   - counters are monotone and bounded: drained ≤ sent ≤ M;
//   - a live chain is linked to its owner: while a channel still has
//     flits to forward, its upstream channel belongs to the same
//     message;
//   - free channels are fully reset;
//   - the source-queue accounting is self-consistent.
func (nw *network) checkInvariants() error {
	numChans := nw.top.N() * nw.slots
	for ch := 0; ch < numChans; ch++ {
		eject := ch%nw.slots == nw.deg
		for vc := 0; vc < nw.v; vc++ {
			gvc := int32(ch*nw.v + vc)
			m := nw.owner[gvc]
			sent, drained, buf := nw.sent[gvc], nw.drained[gvc], nw.buf[gvc]
			if m == nil {
				if sent != 0 || drained != 0 || buf != 0 || nw.prev[gvc] != -1 {
					return invariantErrf("free VC %d not reset (sent=%d drained=%d buf=%d prev=%d)",
						gvc, sent, drained, buf, nw.prev[gvc])
				}
				continue
			}
			if drained > sent || sent > m.length {
				return invariantErrf("VC %d counters out of order (sent=%d drained=%d M=%d)",
					gvc, sent, drained, m.length)
			}
			if eject {
				if buf != 0 || drained != 0 {
					return invariantErrf("ejection VC %d holds flits (buf=%d drained=%d)",
						gvc, buf, drained)
				}
			} else {
				if buf != sent-drained {
					return invariantErrf("VC %d flit leak (buf=%d sent=%d drained=%d)",
						gvc, buf, sent, drained)
				}
				if buf < 0 || buf > nw.bufCap {
					return invariantErrf("VC %d buffer out of range (%d)", gvc, buf)
				}
			}
			if p := nw.prev[gvc]; p >= 0 && sent < m.length {
				if nw.owner[p] != m {
					return invariantErrf("VC %d upstream %d owned by a different message", gvc, p)
				}
			}
		}
	}
	// active-channel bookkeeping must match ownership exactly
	for ch := 0; ch < numChans; ch++ {
		busy := int16(0)
		for vc := 0; vc < nw.v; vc++ {
			if nw.owner[ch*nw.v+vc] != nil {
				busy++
			}
		}
		if busy != nw.busyVCs[ch] {
			return invariantErrf("channel %d busy count %d, owners say %d",
				ch, nw.busyVCs[ch], busy)
		}
		pos := nw.activePos[ch]
		switch {
		case busy == 0 && pos != -1:
			return invariantErrf("idle channel %d in active set", ch)
		case busy > 0 && (pos < 0 || int(pos) >= len(nw.active) || nw.active[pos] != int32(ch)):
			return invariantErrf("busy channel %d missing from active set", ch)
		}
	}
	total := 0
	for node, l := range nw.queueLen {
		if l < 0 {
			return invariantErrf("negative queue length at node %d", node)
		}
		cnt := 0
		for m := nw.queueHead[node]; m != nil; m = m.nextQueue {
			cnt++
			if cnt > l {
				break
			}
		}
		if cnt != l {
			return invariantErrf("node %d queue list length %d, counter %d", node, cnt, l)
		}
		total += l
	}
	if total != nw.totalQueued {
		return invariantErrf("queue total %d, counter %d", total, nw.totalQueued)
	}
	if nw.res.Delivered > nw.res.Generated {
		return invariantErrf("delivered %d > generated %d", nw.res.Delivered, nw.res.Generated)
	}
	return nil
}
