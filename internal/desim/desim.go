// Package desim is a flit-level, cycle-accurate discrete-event
// simulator of wormhole-switched direct networks with virtual-channel
// flow control. It reproduces the validation vehicle of the paper:
//
//   - the network cycle is the transmission time of one flit across
//     one physical channel;
//   - each node generates messages by an independent Poisson process
//     and destinations follow a configurable pattern (uniform in the
//     paper);
//   - messages are M flits long; the header acquires one virtual
//     channel per hop under a routing.Spec (NHop / Nbc /
//     Enhanced-Nbc) and body flits follow in wormhole fashion;
//   - the V virtual channels of a physical channel share its
//     bandwidth by demand-driven round-robin multiplexing (one flit
//     per channel per cycle);
//   - messages reach the local processor through a dedicated ejection
//     channel and are injected through a dedicated injection channel,
//     each also carrying V virtual channels;
//   - the mean message latency is the time from generation to the
//     delivery of the last data flit, the network latency from
//     injection-channel acquisition to delivery, and the queueing
//     time the difference.
//
// The simulator is deterministic for a fixed Config (including Seed)
// and single-goroutine; parallelism belongs to the sweep harness in
// internal/experiments, which runs independent configurations on
// separate goroutines.
package desim

import (
	"starperf/internal/cfgerr"
	"starperf/internal/routing"
	"starperf/internal/stats"
	"starperf/internal/topology"
	"starperf/internal/traffic"
)

// Config fully describes one simulation run.
type Config struct {
	// Top is the network topology.
	Top topology.Topology
	// Spec is the resolved routing algorithm (see routing.New).
	Spec routing.Spec
	// Policy selects among free eligible virtual channels.
	Policy routing.Policy
	// Pattern maps sources to destinations; nil means uniform.
	Pattern traffic.Pattern
	// NewArrivals optionally overrides the per-node arrival process
	// (default: Poisson at Rate). It is called once per node with a
	// node-specific RNG and must honour the configured mean rate for
	// the latency statistics to be comparable.
	NewArrivals func(rng *traffic.RNG, rate float64) traffic.Arrivals
	// Rate is the per-node message generation rate λg in
	// messages/cycle.
	Rate float64
	// MsgLen is the message length M in flits (the mean when
	// LenDist is set).
	MsgLen int
	// LenDist optionally draws per-message lengths (sensitivity
	// studies of the paper's fixed-M assumption); nil means every
	// message is exactly MsgLen flits. Sampled lengths are clamped
	// to [1, 16384].
	LenDist traffic.LengthDist
	// BufCap is the per-virtual-channel buffer depth in flits. The
	// paper gives each VC an input and an output buffer; depth 2
	// (the default when 0) sustains full-rate wormhole streaming.
	BufCap int
	// CutThrough selects virtual cut-through switching: buffers hold
	// a whole message (BufCap defaults to MsgLen), so a blocked
	// message is absorbed by the local router instead of stalling a
	// chain of channels — the classic comparison point for wormhole
	// switching. With LenDist set, BufCap must be set explicitly to
	// cover the longest message.
	CutThrough bool
	// Seed makes the run reproducible.
	Seed uint64
	// WarmupCycles are discarded before measurement begins.
	WarmupCycles int64
	// MeasureCycles is the length of the measurement window:
	// messages *generated* inside it are measured.
	MeasureCycles int64
	// DrainCycles bounds how long after the window the simulator
	// waits for measured messages to be delivered (default
	// 4×(Warmup+Measure) when 0).
	DrainCycles int64
	// DeadlockThreshold is the number of consecutive cycles without
	// any flit transfer (while messages are in flight) after which
	// the run aborts with Result.Deadlocked (default 50000 when 0).
	DeadlockThreshold int64
	// MaxMsgAge, when positive, arms the over-age half of the
	// progress watchdog: if any message stays in the network (from
	// injection-VC acquisition) longer than this many cycles, the run
	// aborts gracefully with Result.Aborted and the stalled message's
	// route in Result.StallTrace — catching livelocks and
	// fault-induced starvation that global progress (which
	// DeadlockThreshold monitors) does not see. Zero disables the
	// check, preserving byte-identical results for existing configs.
	MaxMsgAge int64
	// Paranoid enables structural invariant checking every
	// ParanoidEvery cycles (default 64 when 0); a violation aborts
	// the run with an error. Costs roughly 2× runtime; intended for
	// tests and debugging sessions.
	Paranoid      bool
	ParanoidEvery int64
	// TraceCap, when positive, records up to that many Events in
	// Result.Trace (generation, injection, per-hop VC grants,
	// delivery) for debugging and for the wormhole-ordering tests.
	TraceCap int
	// Observer, when non-nil, receives lifecycle events, per-cycle
	// ticks and a read-only state probe (see Observer). Observation is
	// strictly passive: attaching one cannot change the Result. The
	// standard implementation lives in internal/obs.
	Observer Observer
}

func (c *Config) validate() error {
	switch {
	case c.Top == nil:
		return cfgerr.New("desim: nil topology")
	case c.Top.N() <= 0:
		return cfgerr.Errorf("desim: topology %q has no nodes", c.Top.Name())
	case c.Spec.V() <= 0:
		return cfgerr.New("desim: routing spec has no virtual channels")
	case c.Rate < 0:
		return cfgerr.Errorf("desim: negative rate %v", c.Rate)
	case c.MsgLen <= 0:
		return cfgerr.Errorf("desim: message length %d", c.MsgLen)
	case c.MsgLen > 1<<14:
		return cfgerr.Errorf("desim: message length %d too large", c.MsgLen)
	case c.WarmupCycles < 0:
		return cfgerr.Errorf("desim: negative WarmupCycles %d", c.WarmupCycles)
	case c.MeasureCycles <= 0:
		return cfgerr.Errorf("desim: MeasureCycles %d must be positive", c.MeasureCycles)
	case c.DrainCycles < 0:
		return cfgerr.Errorf("desim: negative DrainCycles %d", c.DrainCycles)
	case c.DeadlockThreshold < 0:
		return cfgerr.Errorf("desim: negative DeadlockThreshold %d", c.DeadlockThreshold)
	case c.MaxMsgAge < 0:
		return cfgerr.Errorf("desim: negative MaxMsgAge %d", c.MaxMsgAge)
	case c.TraceCap < 0:
		return cfgerr.Errorf("desim: negative TraceCap %d", c.TraceCap)
	}
	return nil
}

// ChannelFlapper is implemented by fault-injecting topologies
// (internal/faults.Faulted) whose physical links go down and come
// back in deterministic periodic windows. The simulator queries
// every network channel once at start-up; channel (node, dim) is
// down at cycle t iff (t+phase) mod period < down.
type ChannelFlapper interface {
	// FlapWindow returns the flap window of channel (node, dim);
	// ok is false when the channel never flaps.
	FlapWindow(node, dim int) (period, down, phase int64, ok bool)
}

// NodeHealth is implemented by fault-injecting topologies in which
// whole nodes can fail. The simulator skips the arrival process of a
// failed node and draws default uniform destinations over live nodes
// only; a custom pattern that addresses a dead (or otherwise
// unreachable) destination aborts the run at injection with a typed
// routing.UnreachableError.
type NodeHealth interface {
	// NodeUp reports whether node survives the fault plan.
	NodeUp(node int) bool
}

// Result aggregates one run's measurements.
type Result struct {
	// Latency is the distribution of total message latency
	// (generation → last flit at destination PE) over measured
	// messages, in cycles.
	Latency stats.Stream
	// NetLatency covers injection-VC acquisition → delivery.
	NetLatency stats.Stream
	// QueueTime covers generation → injection-VC acquisition.
	QueueTime stats.Stream
	// HopCount is the distribution of path lengths of measured
	// messages.
	HopCount stats.Stream
	// VCHolding is the distribution of virtual-channel holding times
	// (grant → release) over network channels, for grants inside the
	// measurement window. Its mean is the empirical channel service
	// time the paper's eq. 13 approximates by the whole network
	// latency S̄ (and the cut-through model by M).
	VCHolding stats.Stream
	// HopWait is the distribution of per-hop header waiting times
	// (cycles from the first allocation attempt at a router to the
	// grant, zero when the first attempt succeeds), over network hops
	// of measured messages. Its mean is the simulator's counterpart
	// of the model's P_block·w̄ (eqs. 6 and 15).
	HopWait stats.Stream
	// LatencyHist is the integer histogram of measured message
	// latencies (bins are cycles, clamped at 1<<14), from which tail
	// percentiles can be read.
	LatencyHist *stats.Histogram
	// Generated counts all messages created during the run;
	// Delivered all deliveries; MeasuredDelivered the measured ones
	// (generated inside the window, delivered eventually);
	// DeliveredInWindow the deliveries that completed inside the
	// measurement window regardless of generation time — the count
	// that defines accepted throughput.
	Generated, Delivered, MeasuredDelivered, DeliveredInWindow uint64
	// Cycles is the number of simulated cycles.
	Cycles int64
	// VCBusyHist[v] counts (channel,cycle) samples with exactly v
	// busy VCs, sampled over network channels during measurement.
	VCBusyHist []uint64
	// Multiplexing is the measured average multiplexing degree
	// V̄ = E[v²]/E[v] over busy samples (1 when no samples).
	Multiplexing float64
	// ClassAUse and ClassBUse count network-hop VC acquisitions per
	// class; ClassBLevelUse counts class-b acquisitions per level.
	ClassAUse, ClassBUse uint64
	ClassBLevelUse       []uint64
	// BlockedAttempts counts allocation attempts that found no free
	// eligible VC; Attempts counts all allocation attempts (network
	// hops only). Their ratio estimates the blocking probability.
	BlockedAttempts, Attempts uint64
	// ChannelGrantCV is the coefficient of variation of per-channel
	// message acquisitions over the network channels, measured after
	// warm-up. Values near zero confirm the evenly-distributed
	// channel-rate assumption behind the paper's eq. 3; skewed
	// patterns (hotspot) drive it up.
	ChannelGrantCV float64
	// ChannelRate is the measured per-channel message acquisition
	// rate (grants/channel/cycle after warm-up), the empirical λc.
	ChannelRate float64
	// MaxQueueLen is the largest source-queue length observed;
	// EndQueueLen the total queued messages at the end of the run.
	MaxQueueLen, EndQueueLen int
	// Nodes is the network size (for per-node normalisation of the
	// queue statistics).
	Nodes int
	// IntervalLatency is the mean delivery latency per 512-cycle
	// interval over the whole run (warm-up included, empty intervals
	// carrying the previous mean forward) — the time series behind
	// data-driven warm-up detection. SuggestedWarmup is the MSER
	// truncation point converted back to cycles (-1 when no steady
	// state was detected).
	IntervalLatency []float64
	SuggestedWarmup int64
	// Trace holds the recorded events when Config.TraceCap > 0;
	// TraceDropped counts events beyond the capacity.
	Trace        []Event
	TraceDropped uint64
	// Deadlocked reports that the deadlock detector fired.
	Deadlocked bool
	// Drained reports that every measured message was delivered
	// before the drain limit; when false the latency figures are
	// biased low (a saturation symptom).
	Drained bool
	// Aborted reports that the progress watchdog ended the run early
	// — a no-flit-advanced window (then Deadlocked is also set) or an
	// over-age message (Config.MaxMsgAge) — instead of burning cycles
	// to the drain limit. AbortReason says which and why, StallCycle
	// is the cycle the watchdog fired, and StallTrace reconstructs
	// the oldest in-flight message's route (generation, injection and
	// one grant event per still-held virtual channel) from the live
	// channel chains, independent of Config.TraceCap.
	Aborted     bool
	AbortReason string
	StallCycle  int64
	StallTrace  []Event
	// Misroutes counts hops granted on non-minimal channels — the
	// escape/misroute fallback taken when transient faults had every
	// profitable channel of a hop down. Always zero on fault-free
	// topologies.
	Misroutes uint64
}

// Saturated heuristically reports whether the run operated beyond
// saturation: the detector fired, the watchdog aborted the run,
// measured messages never drained, or the source queues ended the
// run holding more than four messages per node on average (arrivals
// continue through the drain period, so a stable network ends with
// short steady-state queues while an overloaded one accumulates them
// linearly).
func (r *Result) Saturated() bool {
	return r.Deadlocked || r.Aborted || !r.Drained ||
		(r.Nodes > 0 && r.EndQueueLen > 4*r.Nodes)
}

// message is one wormhole packet in flight.
type message struct {
	id        uint64
	src, dst  int
	genCycle  int64
	injCycle  int64
	waitStart int64 // first allocation attempt for the current hop; -1 when idle
	hops      int
	length    int16
	st        routing.State
	headVC    int32 // global VC index of the furthest acquired channel
	curNode   int32 // node whose router buffers the head flit
	measured  bool
	routing   bool // present in the routePending list
	nextQueue *message
}

// network is the mutable simulation state.
type network struct {
	cfg     Config
	top     topology.Topology
	spec    routing.Spec
	deg     int // network dimensions per node
	slots   int // deg + ejection + injection
	v       int
	bufCap  int16
	msgLen  int16
	pattern traffic.Pattern

	// per-VC state, indexed channel*v + vc
	owner   []*message
	prev    []int32
	buf     []int16
	sent    []int16
	drained []int16

	rr []uint8 // per-channel round-robin pointer

	queueHead, queueTail []*message
	queueLen             []int
	totalQueued          int

	arrivals []traffic.Arrivals
	rng      *traffic.RNG

	routePending []*message
	decisions    []int32
	grantCount   []uint32 // per network channel, after warm-up
	chanExists   []bool   // per channel; false for mesh borders and failed links

	// Transient-fault state (nil/false on fault-free topologies, so
	// the hot loops keep their fast paths). flapOfChan maps a channel
	// to its flap window in flapWindows (−1: never flaps); checkReach
	// enables the per-message injection reachability check; nodeUp is
	// the per-node liveness mask.
	flapOfChan  []int32
	flapWindows []flapWindow
	checkReach  bool
	nodeUp      []bool

	// Active-channel tracking: the transfer loop visits only channels
	// with at least one owned VC instead of scanning the whole
	// network every cycle (a large win at light load; see
	// BenchmarkSimS7LowLoad). busyVCs counts owned VCs per channel;
	// active is an unordered set with swap-removal via activePos.
	busyVCs    []int16
	active     []int32
	activePos  []int32
	grantCycle []int64 // per VC: when the current owner acquired it
	dimBuf     []int
	eligBuf    []int
	pairBuf    []pair

	freeList *message

	// Observability: obs is Config.Observer (nil when detached) and
	// wantEvents caches TraceCap>0 || obs!=nil so the hot paths pay a
	// single boolean test — and build no Event — when both are off.
	obs        Observer
	wantEvents bool

	intervalSum   float64
	intervalCount int64

	cycle           int64
	lastProgress    int64
	measuredInFly   uint64
	res             Result
	measureStart    int64
	measureEnd      int64
	sampleCountdown int
}

type pair struct {
	gvc int32
	vc  int
}

// flapWindow is the resolved per-channel form of a transient link
// fault: down at cycle t iff (t+phase) mod period < down.
type flapWindow struct {
	period, down, phase int64
}

// channel index helpers: per node, slots 0..deg-1 are network
// channels along each dimension, slot deg is the ejection channel,
// slot deg+1 the injection channel.
func (nw *network) chanIdx(node, slot int) int32 { return int32(node*nw.slots + slot) }

func (nw *network) isEjection(ch int32) bool { return int(ch)%nw.slots == nw.deg }

func (nw *network) nodeOfChan(ch int32) int { return int(ch) / nw.slots }

// downstreamNode returns the node whose router receives flits sent on
// ch (the node itself for injection channels, -1 for ejection).
func (nw *network) downstreamNode(ch int32) int {
	node := int(ch) / nw.slots
	slot := int(ch) % nw.slots
	switch {
	case slot < nw.deg:
		return nw.top.Neighbor(node, slot)
	case slot == nw.deg:
		return -1
	default:
		return node
	}
}
