package desim

import (
	"testing"

	"starperf/internal/routing"
	"starperf/internal/stats"
)

// TestFirstProfitableBaseline: deterministic minimal routing must be
// deadlock-free (it routes inside the same escape structure) and
// strictly worse than adaptive routing once contention matters.
func TestFirstProfitableBaseline(t *testing.T) {
	const rate = 0.008
	det := s5cfg(routing.EnhancedNbc, 6, rate, 32, 31)
	det.Policy = routing.FirstProfitable
	rDet, err := Run(det)
	if err != nil {
		t.Fatal(err)
	}
	if rDet.Deadlocked {
		t.Fatal("deterministic baseline deadlocked")
	}
	adapt := s5cfg(routing.EnhancedNbc, 6, rate, 32, 31)
	rAd, err := Run(adapt)
	if err != nil {
		t.Fatal(err)
	}
	if rDet.Latency.Mean() <= rAd.Latency.Mean() {
		t.Fatalf("deterministic latency %.2f not above adaptive %.2f",
			rDet.Latency.Mean(), rAd.Latency.Mean())
	}
}

func TestFirstProfitableParanoid(t *testing.T) {
	cfg := s5cfg(routing.Nbc, 4, 0.004, 16, 5)
	cfg.Policy = routing.FirstProfitable
	cfg.Paranoid = true
	cfg.WarmupCycles = 1000
	cfg.MeasureCycles = 6000
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyHistogram(t *testing.T) {
	cfg := s5cfg(routing.EnhancedNbc, 6, 0.008, 32, 13)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyHist.Total() != res.Latency.N() {
		t.Fatalf("histogram total %d, latency samples %d",
			res.LatencyHist.Total(), res.Latency.N())
	}
	p50 := float64(res.LatencyHist.Quantile(0.5))
	p99 := float64(res.LatencyHist.Quantile(0.99))
	if p50 > res.Latency.Mean()+1 {
		t.Fatalf("median %v above mean %v for a right-skewed latency distribution",
			p50, res.Latency.Mean())
	}
	if p99 < p50 || p99 > res.Latency.Max() {
		t.Fatalf("p99 %v outside [p50=%v, max=%v]", p99, p50, res.Latency.Max())
	}
	// histogram mean must agree with the stream mean (integer
	// truncation aside)
	if d := res.LatencyHist.Mean() - res.Latency.Mean(); d < -1 || d > 1 {
		t.Fatalf("histogram mean %v vs stream mean %v", res.LatencyHist.Mean(), res.Latency.Mean())
	}
}

func TestHopWaitMeasurement(t *testing.T) {
	// At vanishing load headers never wait; under load the mean hop
	// wait is positive and total blocking time ≈ hops × mean wait
	// explains the latency beyond the zero-load pipeline.
	quiet := s5cfg(routing.EnhancedNbc, 6, 0.0005, 32, 41)
	rq, err := Run(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if rq.HopWait.Mean() > 0.05 {
		t.Fatalf("hop wait %v at near-zero load", rq.HopWait.Mean())
	}
	busy := s5cfg(routing.EnhancedNbc, 6, 0.012, 32, 41)
	rb, err := Run(busy)
	if err != nil {
		t.Fatal(err)
	}
	if rb.HopWait.Mean() <= 0.1 {
		t.Fatalf("hop wait %v too small at heavy load", rb.HopWait.Mean())
	}
	if rb.HopWait.N() == 0 ||
		rb.HopWait.N() < uint64(float64(rb.MeasuredDelivered)*3) {
		t.Fatalf("hop wait samples %d vs delivered %d", rb.HopWait.N(), rb.MeasuredDelivered)
	}
	// accounting: zero-load pipeline M + h + 1 + per-hop waits +
	// ejection-wait must be ≤ measured network latency (ejection and
	// body-flit interleaving add the rest)
	pipeline := 32 + rb.HopCount.Mean() + 1 + rb.HopCount.Mean()*rb.HopWait.Mean()
	if rb.NetLatency.Mean() < pipeline-0.5 {
		t.Fatalf("net latency %.2f below pipeline+waits %.2f",
			rb.NetLatency.Mean(), pipeline)
	}
}

func TestSuggestedWarmup(t *testing.T) {
	// Start measuring from cycle 0 at a steady moderate load: the
	// suggested warm-up must be positive (there IS a fill transient)
	// and comfortably inside the run.
	cfg := s5cfg(routing.EnhancedNbc, 6, 0.012, 32, 19)
	cfg.WarmupCycles = 0
	cfg.MeasureCycles = 60000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IntervalLatency) < 20 {
		t.Fatalf("only %d latency intervals", len(res.IntervalLatency))
	}
	if res.SuggestedWarmup < 0 {
		t.Fatal("no steady state detected on a stable workload")
	}
	if res.SuggestedWarmup > res.Cycles/2 {
		t.Fatalf("suggested warm-up %d beyond half the run (%d cycles)",
			res.SuggestedWarmup, res.Cycles)
	}
	// the post-truncation series must be flatter than the full one
	cut := int(res.SuggestedWarmup / 512)
	var all, tail stats.Stream
	for i, x := range res.IntervalLatency {
		all.Add(x)
		if i >= cut {
			tail.Add(x)
		}
	}
	if cut > 0 && tail.Variance() > all.Variance() {
		t.Fatalf("truncation did not reduce variance (%v vs %v)",
			tail.Variance(), all.Variance())
	}
}

func TestVCHoldingTimes(t *testing.T) {
	// A network channel's VC is held from header grant until the tail
	// drains: at least M+1 cycles, and with multiplexing and
	// downstream blocking somewhere between M and the network latency
	// S̄ — the quantity eq. 13 approximates by S̄.
	cfg := s5cfg(routing.EnhancedNbc, 6, 0.01, 32, 61)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.VCHolding.N() == 0 {
		t.Fatal("no holding samples")
	}
	if res.VCHolding.Min() < 32+1 {
		t.Fatalf("holding time %v below M+1", res.VCHolding.Min())
	}
	if res.VCHolding.Mean() >= res.NetLatency.Mean() {
		t.Fatalf("mean holding %v not below network latency %v",
			res.VCHolding.Mean(), res.NetLatency.Mean())
	}
	// Little's law cross-check: E[busy VCs per channel] = λc·E[hold].
	var busySum, samples float64
	for v, c := range res.VCBusyHist {
		busySum += float64(v) * float64(c)
		samples += float64(c)
	}
	little := res.ChannelRate * res.VCHolding.Mean()
	if meanBusy := busySum / samples; little < 0.8*meanBusy || little > 1.2*meanBusy {
		t.Fatalf("Little's law violated: λc·E[hold]=%v vs E[busy]=%v", little, meanBusy)
	}
}
