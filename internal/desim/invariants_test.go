package desim

import (
	"strings"
	"testing"

	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func TestParanoidCleanRun(t *testing.T) {
	cfg := s5cfg(routing.EnhancedNbc, 6, 0.01, 32, 3)
	cfg.WarmupCycles = 1000
	cfg.MeasureCycles = 8000
	cfg.Paranoid = true
	cfg.ParanoidEvery = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("paranoid run failed: %v", err)
	}
	if res.MeasuredDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// corrupt builds a small live network, mutates one field, and expects
// checkInvariants to name the violation.
func corrupt(t *testing.T, mutate func(nw *network), wantSubstr string) {
	t.Helper()
	g := stargraph.MustNew(4)
	nw, err := newNetwork(Config{
		Top:           g,
		Spec:          routing.MustNew(routing.EnhancedNbc, g, 4),
		Rate:          0.02,
		MsgLen:        8,
		Seed:          11,
		WarmupCycles:  0,
		MeasureCycles: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// run a few hundred cycles to populate channels
	for nw.cycle = 0; nw.cycle < 400; nw.cycle++ {
		nw.doArrivals()
		nw.doInjection()
		nw.doRouting()
		nw.doTransfers()
	}
	if err := nw.checkInvariants(); err != nil {
		t.Fatalf("pre-corruption state already invalid: %v", err)
	}
	mutate(nw)
	err = nw.checkInvariants()
	if err == nil {
		t.Fatalf("corruption not detected (wanted %q)", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not mention %q", err, wantSubstr)
	}
}

func findBusyNetworkVC(nw *network) int32 {
	numChans := nw.top.N() * nw.slots
	for ch := 0; ch < numChans; ch++ {
		if ch%nw.slots >= nw.deg {
			continue // skip ejection/injection for determinism
		}
		for vc := 0; vc < nw.v; vc++ {
			gvc := int32(ch*nw.v + vc)
			if nw.owner[gvc] != nil && nw.sent[gvc] > nw.drained[gvc] {
				return gvc
			}
		}
	}
	return -1
}

func TestInvariantDetectsFlitLeak(t *testing.T) {
	corrupt(t, func(nw *network) {
		gvc := findBusyNetworkVC(nw)
		if gvc < 0 {
			t.Skip("no busy VC at chosen cycle")
		}
		nw.buf[gvc]++ // conjure a flit from nowhere
	}, "flit leak")
}

func TestInvariantDetectsCounterDisorder(t *testing.T) {
	corrupt(t, func(nw *network) {
		gvc := findBusyNetworkVC(nw)
		if gvc < 0 {
			t.Skip("no busy VC at chosen cycle")
		}
		nw.drained[gvc] = nw.sent[gvc] + 1
		nw.buf[gvc] = -1
	}, "counters out of order")
}

func TestInvariantDetectsDirtyFreeVC(t *testing.T) {
	corrupt(t, func(nw *network) {
		for gvc := range nw.owner {
			if nw.owner[gvc] == nil {
				nw.sent[gvc] = 3
				return
			}
		}
	}, "not reset")
}

func TestInvariantDetectsQueueMismatch(t *testing.T) {
	corrupt(t, func(nw *network) {
		nw.totalQueued += 5
	}, "queue total")
}

func TestInvariantDetectsForeignUpstream(t *testing.T) {
	corrupt(t, func(nw *network) {
		numChans := nw.top.N() * nw.slots
		for ch := 0; ch < numChans; ch++ {
			for vc := 0; vc < nw.v; vc++ {
				gvc := int32(ch*nw.v + vc)
				m := nw.owner[gvc]
				if m == nil || nw.prev[gvc] < 0 || nw.sent[gvc] >= nw.msgLen {
					continue
				}
				other := &message{}
				nw.owner[nw.prev[gvc]] = other
				return
			}
		}
		t.Skip("no linked VC at chosen cycle")
	}, "different message")
}
