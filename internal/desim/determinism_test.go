package desim

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"starperf/internal/faults"
	"starperf/internal/hypercube"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/stats"
	"starperf/internal/topology"
)

// fingerprint serialises every statistic of a Result into a canonical
// byte string: two runs agree on the fingerprint iff they agree
// bit-for-bit on the latency distributions, the full latency
// histogram, all counters and the derived metrics. This is the
// invariant the whole validation methodology (paper Figure 1a–c)
// rests on — the simulator must be a pure function of its Config.
func fingerprint(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	put := func(vs ...any) {
		for _, v := range vs {
			if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
				t.Fatalf("fingerprint: %v", err)
			}
		}
	}
	stream := func(s *stats.Stream) {
		put(s.N(), math.Float64bits(s.Mean()), math.Float64bits(s.Variance()),
			math.Float64bits(s.Min()), math.Float64bits(s.Max()))
	}
	stream(&r.Latency)
	stream(&r.NetLatency)
	stream(&r.QueueTime)
	stream(&r.HopCount)
	stream(&r.VCHolding)
	stream(&r.HopWait)
	put(r.LatencyHist.Bins, r.LatencyHist.Clamped, r.LatencyHist.Total(),
		math.Float64bits(r.LatencyHist.Mean()))
	put(r.Generated, r.Delivered, r.MeasuredDelivered, r.DeliveredInWindow, r.Cycles)
	put(r.VCBusyHist, math.Float64bits(r.Multiplexing))
	put(r.ClassAUse, r.ClassBUse, r.ClassBLevelUse)
	put(r.BlockedAttempts, r.Attempts)
	put(math.Float64bits(r.ChannelGrantCV), math.Float64bits(r.ChannelRate))
	put(int64(r.MaxQueueLen), int64(r.EndQueueLen), int64(r.Nodes))
	for _, x := range r.IntervalLatency {
		put(math.Float64bits(x))
	}
	put(r.SuggestedWarmup, r.Deadlocked, r.Drained)
	put(r.Aborted, r.StallCycle, r.Misroutes, int64(len(r.StallTrace)))
	return buf.Bytes()
}

// TestDeterminismByteIdentical is the determinism regression gate:
// two runs with an identical Config (including Seed) must produce
// byte-identical statistics, across two topologies and two routing
// algorithms. Any nondeterminism source — map-iteration order feeding
// event order, unseeded randomness, scheduling-dependent float
// summation — fails this test.
func TestDeterminismByteIdentical(t *testing.T) {
	s4 := stargraph.MustNew(4)
	// a faulted topology must be exactly as deterministic as a
	// pristine one: same fault seed → byte-identical Result,
	// including the flap-driven misroute fallback
	faultPlan, err := faults.NewPlan(s4, 97, faults.Options{FailLinks: 1, Flaps: 1,
		FlapPeriod: 512, FlapDown: 128})
	if err != nil {
		t.Fatal(err)
	}
	tops := []struct {
		name string
		top  topology.Topology
		v    int
	}{
		{"S4", s4, 4},
		{"Q4", hypercube.MustNew(4), 4},
		// the degraded diameter can exceed the pristine one, raising
		// the escape-level minimum — hence the larger budget
		{"S4-faulted", faults.MustApply(s4, faultPlan), 6},
	}
	kinds := []routing.Kind{routing.NHop, routing.EnhancedNbc}
	for _, tc := range tops {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", tc.name, kind), func(t *testing.T) {
				cfg := Config{
					Top:           tc.top,
					Spec:          routing.MustNew(kind, tc.top, tc.v),
					Policy:        routing.PreferClassA,
					Rate:          0.02,
					MsgLen:        8,
					Seed:          12345,
					WarmupCycles:  1000,
					MeasureCycles: 5000,
					TraceCap:      64,
				}
				run := func() ([]byte, *Result) {
					res, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					return fingerprint(t, res), res
				}
				fp1, res1 := run()
				fp2, _ := run()
				if !bytes.Equal(fp1, fp2) {
					t.Fatalf("two runs with identical Config diverged (fingerprints %d vs %d bytes differ)",
						len(fp1), len(fp2))
				}
				if res1.MeasuredDelivered == 0 {
					t.Fatal("no measured deliveries: the fingerprint compared empty statistics")
				}
				// The traces must agree event-for-event, not just in
				// aggregate.
				_, res3 := run()
				if len(res1.Trace) != len(res3.Trace) {
					t.Fatalf("trace lengths differ: %d vs %d", len(res1.Trace), len(res3.Trace))
				}
				for i := range res1.Trace {
					if res1.Trace[i] != res3.Trace[i] {
						t.Fatalf("trace event %d differs: %+v vs %+v", i, res1.Trace[i], res3.Trace[i])
					}
				}
				// A different seed must move the statistics — otherwise
				// the fingerprint (or the seeding) is vacuous.
				cfg.Seed = 54321
				res4, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if bytes.Equal(fp1, fingerprint(t, res4)) {
					t.Fatal("different seeds produced byte-identical statistics")
				}
			})
		}
	}
}
