package desim

import (
	"fmt"

	"starperf/internal/routing"
)

// EventKind tags a traced simulator event.
type EventKind uint8

// The traced event kinds, in the order they occur in a message's
// life: generation into the source queue, injection-VC acquisition,
// one virtual-channel grant per hop (network channels and the final
// ejection channel), and delivery of the tail flit. EvBlock marks the
// first failed allocation attempt of a hop (one event per blocking
// episode, not per retried cycle); it is delivered to Config.Observer
// only — Result.Trace keeps the four lifecycle kinds so existing
// TraceCap consumers see an unchanged stream.
const (
	EvGenerate EventKind = iota
	EvInject
	EvGrant
	EvDeliver
	EvBlock
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvGenerate:
		return "generate"
	case EvInject:
		return "inject"
	case EvGrant:
		return "grant"
	case EvDeliver:
		return "deliver"
	case EvBlock:
		return "block"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one traced simulator event. For EvGrant, Node is the node
// whose output channel was granted and VC the global virtual-channel
// index; for the other kinds VC is -1 (EvBlock carries the blocked
// router's node and VC -1).
//
// Hop is the zero-based network-hop index the event belongs to (grant
// and block events; the ejection grant carries the full hop count, and
// EvDeliver repeats it). Wait is the number of cycles the header
// waited at the router before this grant (zero when the first attempt
// succeeded) — the per-episode sample behind Result.HopWait, i.e. the
// simulator's P_block·w̄ term of eqs. 6 and 15. Reason is set on
// EvBlock; Misroute marks grants taken on a non-minimal channel.
// StallTrace events reconstructed after the fact leave Hop, Wait and
// Reason zero.
type Event struct {
	Cycle    int64
	Kind     EventKind
	Msg      uint64
	Node     int32
	VC       int32
	Hop      int32
	Wait     int32
	Reason   routing.BlockReason
	Misroute bool
}

func (e Event) String() string {
	s := fmt.Sprintf("c%-6d %-8s msg=%d node=%d vc=%d", e.Cycle, e.Kind, e.Msg, e.Node, e.VC)
	if e.Kind == EvBlock {
		s += fmt.Sprintf(" hop=%d reason=%s", e.Hop, e.Reason)
	}
	return s
}

// traceEvent records ev up to Config.TraceCap (then drops, counting
// the overflow) — enough to audit the full life of messages in a short
// run without unbounded memory in long ones — and forwards every
// event, blocks included, to the attached Observer. Callers guard
// with nw.wantEvents so the fully disabled path costs one boolean
// test and no Event construction.
func (nw *network) traceEvent(ev Event) {
	if nw.cfg.TraceCap > 0 && ev.Kind != EvBlock {
		if len(nw.res.Trace) < nw.cfg.TraceCap {
			nw.res.Trace = append(nw.res.Trace, ev)
		} else {
			nw.res.TraceDropped++
		}
	}
	if nw.obs != nil {
		nw.obs.HandleEvent(ev)
	}
}
