package desim

import "fmt"

// EventKind tags a traced simulator event.
type EventKind uint8

// The traced event kinds, in the order they occur in a message's
// life: generation into the source queue, injection-VC acquisition,
// one virtual-channel grant per hop (network channels and the final
// ejection channel), and delivery of the tail flit.
const (
	EvGenerate EventKind = iota
	EvInject
	EvGrant
	EvDeliver
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvGenerate:
		return "generate"
	case EvInject:
		return "inject"
	case EvGrant:
		return "grant"
	case EvDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one traced simulator event. For EvGrant, Node is the node
// whose output channel was granted and VC the global virtual-channel
// index; for the other kinds VC is -1.
type Event struct {
	Cycle int64
	Kind  EventKind
	Msg   uint64
	Node  int32
	VC    int32
}

func (e Event) String() string {
	return fmt.Sprintf("c%-6d %-8s msg=%d node=%d vc=%d", e.Cycle, e.Kind, e.Msg, e.Node, e.VC)
}

// trace records events up to a fixed capacity (then drops, counting
// the overflow) — enough to audit the full life of messages in a
// short run without unbounded memory in long ones.
func (nw *network) traceEvent(kind EventKind, msg uint64, node, vc int32) {
	if nw.cfg.TraceCap == 0 {
		return
	}
	if len(nw.res.Trace) >= nw.cfg.TraceCap {
		nw.res.TraceDropped++
		return
	}
	nw.res.Trace = append(nw.res.Trace, Event{
		Cycle: nw.cycle, Kind: kind, Msg: msg, Node: node, VC: vc,
	})
}
