package desim

import (
	"testing"

	"starperf/internal/mesh"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func stargraphS4() *stargraph.Graph { return stargraph.MustNew(4) }

// TestMeshRunsHealthy: the negative-hop family is deadlock-free on
// any bipartite topology, including the paper's ref.-[17] mesh; the
// simulator must handle missing border channels transparently.
func TestMeshRunsHealthy(t *testing.T) {
	g := mesh.MustNew(4, 2) // 16 nodes, diameter 6
	cfg := Config{
		Top:           g,
		Spec:          routing.MustNew(routing.EnhancedNbc, g, 6),
		Rate:          0.01,
		MsgLen:        16,
		Seed:          8,
		WarmupCycles:  3000,
		MeasureCycles: 15000,
		Paranoid:      true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.MeasuredDelivered == 0 || !res.Drained {
		t.Fatalf("mesh run unhealthy: deadlocked=%v delivered=%d drained=%v",
			res.Deadlocked, res.MeasuredDelivered, res.Drained)
	}
	want := float64(16) + g.AvgDistance() + 1
	if res.Latency.Mean() < want || res.Latency.Mean() > want+40 {
		t.Fatalf("mesh latency %.2f implausible (zero-load %.2f)", res.Latency.Mean(), want)
	}
}

// TestMeshBreaksChannelSymmetry documents why the symmetric
// analytical model has no mesh variant: under uniform traffic the
// mesh's central channels carry far more load than border ones, so
// the single-λc assumption of eq. 3 fails — unlike on the star graph,
// where the measured per-channel CV is near zero.
func TestMeshBreaksChannelSymmetry(t *testing.T) {
	g := mesh.MustNew(5, 2) // 25 nodes
	cfg := Config{
		Top:           g,
		Spec:          routing.MustNew(routing.EnhancedNbc, g, 6),
		Rate:          0.01,
		MsgLen:        16,
		Seed:          9,
		WarmupCycles:  3000,
		MeasureCycles: 20000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// comparable-size star graph under the same workload
	s := stargraphS4()
	starCfg := cfg
	starCfg.Top = s
	starCfg.Spec = routing.MustNew(routing.EnhancedNbc, s, 6)
	starRes, err := Run(starCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChannelGrantCV < 3*starRes.ChannelGrantCV {
		t.Fatalf("mesh CV %v not well above star CV %v",
			res.ChannelGrantCV, starRes.ChannelGrantCV)
	}
}
