package desim

// The observability hook surface of the simulator. An Observer is an
// opt-in, pull/push hybrid: the simulator pushes message-lifecycle
// events (including the EvBlock episodes that Result.Trace omits) and
// one EndCycle tick per simulated cycle, and hands the observer a
// read-only Probe at BeginRun through which gauges — per-channel busy
// VCs, injection-queue depths — can be sampled at whatever cadence the
// observer chooses. internal/obs provides the standard implementation
// (fixed-interval time series, a bounded trace ring with JSONL export,
// and per-hop blocking counters aligned with eqs. 6/13/15).
//
// Contract: observers are passive. The simulator never lets an
// observer influence control flow, consume randomness or mutate state,
// so a run's Result is byte-identical with and without an attached
// observer (enforced by TestObserverDoesNotPerturb). All callbacks
// arrive on the single simulation goroutine in deterministic order; an
// observer needs no locking unless it shares state across runs. A nil
// Config.Observer costs one predictable branch per event site
// (benchmarked in bench_obs_test.go; see BENCH_sim.json).

// Observer receives simulator lifecycle callbacks. Implementations
// must not retain the Probe past EndRun.
type Observer interface {
	// BeginRun is called once before the first cycle with the run's
	// static dimensions and the live state probe.
	BeginRun(info RunInfo)
	// HandleEvent receives every message-lifecycle event: generate,
	// inject, per-hop grant and first-attempt block, deliver.
	HandleEvent(ev Event)
	// EndCycle is called once per simulated cycle, after all phases of
	// that cycle (arrivals, injection, routing, transfers) completed —
	// the consistent point to sample gauges through the Probe.
	EndCycle(cycle int64)
	// EndRun is called once after the run's statistics are sealed.
	EndRun(res *Result)
}

// RunInfo carries the static dimensions of one run, fixed before the
// first cycle.
type RunInfo struct {
	// Topology names the network instance.
	Topology string
	// Nodes is the node count, Degree the network dimensions per node,
	// Slots Degree+2 (ejection and injection channels), and V the
	// virtual channels per physical channel. Physical channel indices
	// run over [0, Nodes*Slots): per node, slots 0..Degree-1 are the
	// network channels, slot Degree the ejection channel, slot
	// Degree+1 the injection channel.
	Nodes, Degree, Slots, V int
	// Cfg is a copy of the run's configuration.
	Cfg Config
	// Probe reads live simulator state; valid until EndRun returns.
	Probe Probe
}

// Probe is the read-only view of live simulator state handed to
// observers. All methods are O(1) and allocation-free; a full
// per-channel sweep is O(Nodes·Slots).
type Probe interface {
	// Channels returns the number of physical channels (Nodes*Slots).
	Channels() int
	// NetworkChannel reports whether physical channel ch is a network
	// channel that exists in the (possibly degraded) topology — false
	// for injection/ejection slots, mesh borders and failed links.
	NetworkChannel(ch int) bool
	// BusyVCs returns the number of occupied virtual channels of
	// physical channel ch.
	BusyVCs(ch int) int
	// VCBusy reports whether virtual channel vc of physical channel ch
	// is currently owned by a message.
	VCBusy(ch, vc int) bool
	// QueueLen returns the source-queue depth of node.
	QueueLen(node int) int
	// QueuedTotal returns the total number of queued messages.
	QueuedTotal() int
}

// The network itself implements Probe.

// Channels returns the number of physical channels.
func (nw *network) Channels() int { return nw.top.N() * nw.slots }

// NetworkChannel reports whether ch is an existing network channel.
func (nw *network) NetworkChannel(ch int) bool {
	return ch%nw.slots < nw.deg && nw.chanExists[ch]
}

// BusyVCs returns the occupied-VC count of channel ch.
func (nw *network) BusyVCs(ch int) int { return int(nw.busyVCs[ch]) }

// VCBusy reports whether VC vc of channel ch is owned.
func (nw *network) VCBusy(ch, vc int) bool { return nw.owner[ch*nw.v+vc] != nil }

// QueueLen returns the source-queue depth of node.
func (nw *network) QueueLen(node int) int { return nw.queueLen[node] }

// QueuedTotal returns the total queued-message count.
func (nw *network) QueuedTotal() int { return nw.totalQueued }
