// Package traffic implements workload generation for the simulator:
// a deterministic splittable PRNG (SplitMix64 seeding an xoshiro-like
// core), per-node Poisson message processes, and the destination
// patterns used in the paper (uniform) plus the customary extensions
// (hotspot, complement-style permutation traffic).
package traffic

import (
	"fmt"
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). It is not safe for concurrent use; give each
// goroutine its own RNG via Split.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. Any seed (including 0) is valid.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent generator; the parent advances once.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x6a09e667f3bcc909}
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). It panics if n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("traffic: Intn(%d)", n))
	}
	// Lemire's multiply-shift rejection method (unbiased).
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// ExpInterval draws an exponential inter-arrival time with the given
// rate (events per cycle). The result is a positive float64.
func (r *RNG) ExpInterval(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Poisson is a per-node arrival process generating message creation
// times as a Poisson stream of the given rate.
type Poisson struct {
	rng  *RNG
	rate float64
	next float64
}

// NewPoisson creates a process; the first arrival is sampled
// immediately so Next is monotone from time 0.
func NewPoisson(rng *RNG, rate float64) *Poisson {
	p := &Poisson{rng: rng, rate: rate}
	p.next = rng.ExpInterval(rate)
	return p
}

// Rate returns the configured arrival rate (messages/cycle).
func (p *Poisson) Rate() float64 { return p.rate }

// NextArrival returns the time of the next arrival without consuming
// it.
func (p *Poisson) NextArrival() float64 { return p.next }

// Pop consumes and returns the next arrival time, scheduling the one
// after it.
func (p *Poisson) Pop() float64 {
	t := p.next
	p.next = t + p.rng.ExpInterval(p.rate)
	return t
}

// Pattern maps a source node to a destination node.
type Pattern interface {
	// Destination returns a destination ≠ src for the given source.
	Destination(src int, rng *RNG) int
	// Name identifies the pattern.
	Name() string
}

// Uniform sends each message to a destination chosen uniformly among
// the other N−1 nodes — the pattern assumed by the paper's model.
type Uniform struct{ N int }

// Name returns "uniform".
func (u Uniform) Name() string { return "uniform" }

// Destination draws uniformly from the nodes other than src.
func (u Uniform) Destination(src int, rng *RNG) int {
	d := rng.Intn(u.N - 1)
	if d >= src {
		d++
	}
	return d
}

// Hotspot sends a fraction of traffic to a single hot node and the
// rest uniformly (a standard stress extension).
type Hotspot struct {
	N        int
	Hot      int
	Fraction float64
}

// Name returns "hotspot".
func (h Hotspot) Name() string { return "hotspot" }

// Destination routes Fraction of messages to Hot (unless src is the
// hot node itself) and the remainder uniformly.
func (h Hotspot) Destination(src int, rng *RNG) int {
	if src != h.Hot && rng.Float64() < h.Fraction {
		return h.Hot
	}
	return Uniform{N: h.N}.Destination(src, rng)
}

// FixedPermutation sends every message from node i to Dest[i]
// (Dest[i] must differ from i), modelling permutation traffic such as
// the complement pattern.
type FixedPermutation struct {
	Dest  []int
	Label string
}

// Name returns the configured label.
func (f FixedPermutation) Name() string { return f.Label }

// Destination returns the fixed target of src.
func (f FixedPermutation) Destination(src int, _ *RNG) int { return f.Dest[src] }

// LengthDist samples message lengths in flits. The paper fixes the
// length at M; the distributions here support sensitivity studies of
// that assumption (the model's service-variance approximation
// σ² = (S−M)² is exact only for fixed-length messages).
type LengthDist interface {
	// Sample draws one message length (≥ 1).
	Sample(rng *RNG) int
	// Mean returns the expected length.
	Mean() float64
	// Variance returns the length variance.
	Variance() float64
}

// FixedLen is the paper's fixed message length.
type FixedLen struct{ M int }

// Sample returns M.
func (f FixedLen) Sample(*RNG) int { return f.M }

// Mean returns M.
func (f FixedLen) Mean() float64 { return float64(f.M) }

// Variance returns 0.
func (f FixedLen) Variance() float64 { return 0 }

// BimodalLen mixes short control-style and long data-style messages,
// the customary two-point length model.
type BimodalLen struct {
	Short, Long int
	// PLong is the probability of drawing Long.
	PLong float64
}

// Sample draws Short or Long.
func (b BimodalLen) Sample(rng *RNG) int {
	if rng.Float64() < b.PLong {
		return b.Long
	}
	return b.Short
}

// Mean returns the expected length.
func (b BimodalLen) Mean() float64 {
	return float64(b.Short)*(1-b.PLong) + float64(b.Long)*b.PLong
}

// Variance returns the length variance.
func (b BimodalLen) Variance() float64 {
	m := b.Mean()
	ds, dl := float64(b.Short)-m, float64(b.Long)-m
	return ds*ds*(1-b.PLong) + dl*dl*b.PLong
}

// UniformLen draws lengths uniformly from [Min, Max].
type UniformLen struct{ Min, Max int }

// Sample draws a length.
func (u UniformLen) Sample(rng *RNG) int { return u.Min + rng.Intn(u.Max-u.Min+1) }

// Mean returns (Min+Max)/2.
func (u UniformLen) Mean() float64 { return float64(u.Min+u.Max) / 2 }

// Variance returns the discrete-uniform variance ((Max−Min+1)²−1)/12.
func (u UniformLen) Variance() float64 {
	w := float64(u.Max - u.Min + 1)
	return (w*w - 1) / 12
}

// Arrivals is a point process generating message creation times; the
// simulator consumes NextArrival/Pop. Poisson implements it; OnOff
// adds burstiness.
type Arrivals interface {
	// NextArrival returns the time of the next arrival without
	// consuming it.
	NextArrival() float64
	// Pop consumes and returns the next arrival time.
	Pop() float64
}

// OnOff is a two-state Markov-modulated Poisson process: exponential
// ON periods during which arrivals occur at a boosted rate, and
// silent exponential OFF periods. With BurstFactor B the ON rate is
// B·rate/(duty) so the long-run mean rate equals the configured rate;
// larger B means burstier traffic at the same load — the standard
// stress test for Poisson-based analytical models.
type OnOff struct {
	rng     *RNG
	onRate  float64 // arrival rate while ON
	meanOn  float64 // mean ON duration (cycles)
	meanOff float64 // mean OFF duration
	next    float64
	phase   float64 // end of the current ON window
}

// NewOnOff creates a bursty process with the given long-run mean rate,
// burst factor ≥ 1 (1 degenerates to Poisson-like behaviour) and mean
// ON-period length in cycles.
func NewOnOff(rng *RNG, meanRate, burstFactor, meanOn float64) *OnOff {
	if burstFactor < 1 {
		burstFactor = 1
	}
	duty := 1 / burstFactor // fraction of time ON
	p := &OnOff{
		rng:     rng,
		onRate:  meanRate * burstFactor,
		meanOn:  meanOn,
		meanOff: meanOn * (1 - duty) / duty,
	}
	// start in the stationary phase distribution so short horizons
	// are unbiased: ON with probability duty (exponential periods are
	// memoryless, so fresh draws serve as residual lives)
	start := 0.0
	if p.meanOff > 0 && rng.Float64() >= duty {
		start = rng.ExpInterval(1 / p.meanOff)
	}
	p.phase = start + rng.ExpInterval(1/p.meanOn)
	p.next = p.draw(start)
	return p
}

// draw samples the next arrival at or after time t, skipping OFF
// periods.
func (p *OnOff) draw(t float64) float64 {
	for {
		gap := p.rng.ExpInterval(p.onRate)
		if t+gap <= p.phase {
			return t + gap
		}
		// jump to the next ON window
		t = p.phase
		if p.meanOff > 0 {
			t += p.rng.ExpInterval(1 / p.meanOff)
		}
		p.phase = t + p.rng.ExpInterval(1/p.meanOn)
	}
}

// NextArrival returns the pending arrival time.
func (p *OnOff) NextArrival() float64 { return p.next }

// Pop consumes the pending arrival and schedules the next one.
func (p *OnOff) Pop() float64 {
	t := p.next
	p.next = p.draw(t)
	return t
}
