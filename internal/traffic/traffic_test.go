package traffic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(124)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds nearly identical (%d/100 collisions)", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("splits identical")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(2024)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d far from %v", i, c, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestExpIntervalMean(t *testing.T) {
	r := NewRNG(5)
	const rate = 0.02
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpInterval(rate)
		if v <= 0 {
			t.Fatalf("non-positive interval %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.02*(1/rate) {
		t.Fatalf("mean interval %v, want ≈%v", mean, 1/rate)
	}
	if !math.IsInf(r.ExpInterval(0), 1) {
		t.Fatal("zero rate should give +Inf")
	}
}

func TestPoissonMonotone(t *testing.T) {
	p := NewPoisson(NewRNG(3), 0.01)
	prev := 0.0
	for i := 0; i < 1000; i++ {
		if got := p.NextArrival(); got != p.Pop() {
			t.Fatal("NextArrival consumed the arrival")
		}
		cur := p.NextArrival()
		if cur <= prev {
			t.Fatalf("arrivals not strictly increasing: %v after %v", cur, prev)
		}
		prev = cur
	}
	if p.Rate() != 0.01 {
		t.Fatal("Rate accessor wrong")
	}
}

func TestPoissonRate(t *testing.T) {
	// Count arrivals in a horizon; should match rate·T closely.
	const rate, horizon = 0.05, 2_000_000
	p := NewPoisson(NewRNG(11), rate)
	count := 0
	for p.NextArrival() < horizon {
		p.Pop()
		count++
	}
	want := rate * horizon
	if math.Abs(float64(count)-want) > 4*math.Sqrt(want) {
		t.Fatalf("%d arrivals, want ≈%v", count, want)
	}
}

func TestUniformPattern(t *testing.T) {
	u := Uniform{N: 50}
	r := NewRNG(8)
	counts := make([]int, 50)
	const draws = 100000
	for i := 0; i < draws; i++ {
		d := u.Destination(17, r)
		if d == 17 || d < 0 || d >= 50 {
			t.Fatalf("bad destination %d", d)
		}
		counts[d]++
	}
	want := float64(draws) / 49
	for d, c := range counts {
		if d == 17 {
			continue
		}
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("destination %d count %d far from %v", d, c, want)
		}
	}
	if u.Name() != "uniform" {
		t.Fatal("name")
	}
}

func TestUniformNeverSelf(t *testing.T) {
	f := func(seed uint64, srcRaw int) bool {
		u := Uniform{N: 7}
		src := ((srcRaw % 7) + 7) % 7
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if u.Destination(src, r) == src {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHotspotPattern(t *testing.T) {
	h := Hotspot{N: 20, Hot: 3, Fraction: 0.3}
	r := NewRNG(21)
	hot := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		d := h.Destination(5, r)
		if d == 5 {
			t.Fatal("hotspot returned source")
		}
		if d == 3 {
			hot++
		}
	}
	frac := float64(hot) / draws
	// 0.3 direct + 0.7/19 uniform share ≈ 0.3368
	if math.Abs(frac-0.3368) > 0.01 {
		t.Fatalf("hot fraction %v", frac)
	}
	if h.Name() != "hotspot" {
		t.Fatal("name")
	}
	// the hot node itself falls back to uniform
	if d := h.Destination(3, r); d == 3 {
		t.Fatal("hot node sent to itself")
	}
}

func TestFixedPermutation(t *testing.T) {
	f := FixedPermutation{Dest: []int{1, 0}, Label: "swap"}
	if f.Destination(0, nil) != 1 || f.Destination(1, nil) != 0 || f.Name() != "swap" {
		t.Fatal("fixed permutation broken")
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(119)
	}
}

func TestOnOffMeanRate(t *testing.T) {
	// The long-run arrival rate must match the configured mean
	// regardless of burst factor.
	for _, burst := range []float64{1, 3, 8} {
		p := NewOnOff(NewRNG(13), 0.02, burst, 500)
		const horizon = 3_000_000
		count := 0
		for p.NextArrival() < horizon {
			p.Pop()
			count++
		}
		got := float64(count) / horizon
		if math.Abs(got-0.02) > 0.002 {
			t.Fatalf("burst=%v: mean rate %v, want 0.02", burst, got)
		}
	}
}

func TestOnOffMonotoneAndBursty(t *testing.T) {
	p := NewOnOff(NewRNG(3), 0.02, 6, 400)
	prev := -1.0
	var gaps []float64
	for i := 0; i < 20000; i++ {
		tt := p.Pop()
		if tt <= prev {
			t.Fatalf("arrivals not strictly increasing: %v after %v", tt, prev)
		}
		if prev >= 0 {
			gaps = append(gaps, tt-prev)
		}
		prev = tt
	}
	// burstiness: squared coefficient of variation of gaps well above
	// the exponential's 1
	var s, s2 float64
	for _, g := range gaps {
		s += g
		s2 += g * g
	}
	mean := s / float64(len(gaps))
	cv2 := (s2/float64(len(gaps)) - mean*mean) / (mean * mean)
	if cv2 < 1.5 {
		t.Fatalf("gap CV² %v not bursty", cv2)
	}
	// burst factor 1 degenerates to CV² ≈ 1
	p1 := NewOnOff(NewRNG(3), 0.02, 1, 400)
	prev = -1
	s, s2, gaps = 0, 0, nil
	for i := 0; i < 20000; i++ {
		tt := p1.Pop()
		if prev >= 0 {
			gaps = append(gaps, tt-prev)
		}
		prev = tt
	}
	for _, g := range gaps {
		s += g
		s2 += g * g
	}
	mean = s / float64(len(gaps))
	cv2 = (s2/float64(len(gaps)) - mean*mean) / (mean * mean)
	if cv2 > 1.3 {
		t.Fatalf("burst factor 1 gap CV² %v, want ≈1", cv2)
	}
}

func TestLengthDistDeclaredMoments(t *testing.T) {
	rng := NewRNG(77)
	cases := []struct {
		d        LengthDist
		mean, vr float64
	}{
		{FixedLen{M: 32}, 32, 0},
		{BimodalLen{Short: 8, Long: 56, PLong: 0.5}, 32, 576},
		{BimodalLen{Short: 8, Long: 104, PLong: 0.25}, 32, 1728},
		{UniformLen{Min: 16, Max: 48}, 32, (33*33 - 1) / 12.0},
	}
	for _, c := range cases {
		if math.Abs(c.d.Mean()-c.mean) > 1e-9 || math.Abs(c.d.Variance()-c.vr) > 1e-9 {
			t.Fatalf("%T declared moments (%v, %v), want (%v, %v)",
				c.d, c.d.Mean(), c.d.Variance(), c.mean, c.vr)
		}
		var s, s2 float64
		const n = 100000
		for i := 0; i < n; i++ {
			x := float64(c.d.Sample(rng))
			s += x
			s2 += x * x
		}
		m := s / n
		v := s2/n - m*m
		if math.Abs(m-c.mean) > 0.03*math.Max(c.mean, 1) ||
			math.Abs(v-c.vr) > 0.05*math.Max(c.vr, 1) {
			t.Fatalf("%T sampled moments (%v, %v), want (%v, %v)", c.d, m, v, c.mean, c.vr)
		}
	}
}
