package obs

// Serving-layer reporting types. The simulator-side reporting above
// (Metrics, Counters, Summary) describes one run; the types here
// describe the long-lived serving processes built in PR 4 — the
// job pool (internal/jobs), the result cache (internal/cache) and the
// HTTP routes (internal/server) — and are what GET /metricsz returns.
// They live in obs so every layer reports through one vocabulary.

// PoolStats is a point-in-time snapshot of a jobs.Pool.
type PoolStats struct {
	// Workers is the pool size, QueueDepth the intake bound beyond
	// which submissions are rejected with jobs.ErrQueueFull.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Queued and Running are the current backlog and in-flight counts.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Submitted counts accepted jobs; Deduped submissions that
	// attached to an in-flight job instead of enqueuing a duplicate
	// (the singleflight counter); Rejected backpressure refusals.
	Submitted uint64 `json:"submitted"`
	Deduped   uint64 `json:"deduped"`
	Rejected  uint64 `json:"rejected"`
	// Completed and Failed count finished jobs by outcome.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// ExecMeanMicros is the mean job execution time over every
	// finished job, in microseconds — what admission control prices
	// the backlog with (HTTP handler latency would be wrong: an async
	// submit returns 202 in microseconds however long its job runs).
	ExecMeanMicros float64 `json:"exec_mean_us"`
}

// CacheStats is a point-in-time snapshot of a cache.Cache.
type CacheStats struct {
	// Entries and Bytes describe the current memory tier; MaxBytes is
	// its configured bound.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
	// MemHits and DiskHits split hits by the tier that served them
	// (a disk hit is promoted into memory); Misses count lookups
	// neither tier could serve.
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	// Puts counts stores, Evictions entries dropped by the byte bound.
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	// DiskWrites counts persisted entries, DiskErrors best-effort disk
	// operations that failed (the cache stays correct, only colder).
	DiskWrites uint64 `json:"disk_writes"`
	DiskErrors uint64 `json:"disk_errors"`
	// Quarantined counts disk entries that failed verification on
	// read and were moved into corrupt/ instead of being served.
	Quarantined uint64 `json:"quarantined"`
}

// Hits is the total over both tiers.
func (s CacheStats) Hits() uint64 { return s.MemHits + s.DiskHits }

// HitRate is Hits/(Hits+Misses), 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	total := s.Hits() + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// JournalStats is a point-in-time snapshot of a journal.Journal, the
// durable job WAL added in PR 5.
type JournalStats struct {
	// Appends counts records written; AppendErrors appends the
	// journal could not make durable (the write or its fsync failed —
	// the serving layer keeps running, but the record may not survive
	// a crash).
	Appends      uint64 `json:"appends"`
	AppendErrors uint64 `json:"append_errors"`
	// Syncs counts fsyncs issued (file and directory).
	Syncs uint64 `json:"syncs"`
	// Rotations and Compactions count segment rollovers and rewrites.
	Rotations   uint64 `json:"rotations"`
	Compactions uint64 `json:"compactions"`
	// Segments is the current on-disk segment count; Pending the jobs
	// accepted or started but not yet done/failed (what a crash right
	// now would replay).
	Segments int `json:"segments"`
	Pending  int `json:"pending"`
	// Replayed and CorruptSkipped describe the last recovery: records
	// read back at Open, and records dropped for failing their
	// checksum (a torn tail or a flipped bit).
	Replayed       int `json:"replayed"`
	CorruptSkipped int `json:"corrupt_skipped"`
	// Group commit (PR 10). Commits counts coalesced write+fsync
	// units; CommitRecords the records those commits made durable;
	// MaxBatch the largest records-per-commit seen; FsyncsSaved how
	// many per-record fsyncs batching amortised away
	// (CommitRecords − Commits).
	Commits       uint64 `json:"commits"`
	CommitRecords uint64 `json:"commit_records"`
	MaxBatch      int    `json:"max_batch"`
	FsyncsSaved   uint64 `json:"fsyncs_saved"`
	// Commit latency in microseconds: exact mean/max plus quantile
	// upper bounds from a power-of-two histogram (conservative by at
	// most 2×, like the per-route latency sketches).
	CommitMeanMicros float64 `json:"commit_mean_us"`
	CommitP50Micros  uint64  `json:"commit_p50_us"`
	CommitP95Micros  uint64  `json:"commit_p95_us"`
	CommitP99Micros  uint64  `json:"commit_p99_us"`
	CommitMaxMicros  uint64  `json:"commit_max_us"`
	// Read-only degradation (PR 12). ReadOnly reports the journal hit
	// ENOSPC and has not yet proven space returned; NoSpaceErrors
	// counts records lost to full-disk commits; Probes counts the
	// explicit space checks (successful ones clear ReadOnly).
	ReadOnly      bool   `json:"read_only"`
	NoSpaceErrors uint64 `json:"no_space_errors"`
	Probes        uint64 `json:"probes"`
}

// BatchStats counts the server's POST /v1/jobs:batch traffic (PR 10).
type BatchStats struct {
	// Batches counts batch requests taken in; Items the items they
	// carried; MaxItems the largest batch seen.
	Batches  uint64 `json:"batches"`
	Items    uint64 `json:"items"`
	MaxItems int    `json:"max_items"`
	// Shed counts items refused by the batch's deadline-priced
	// admission pass (each also counted in AdmissionStats.Shed).
	Shed uint64 `json:"shed"`
}

// AdmissionStats counts the server's overload refusals.
type AdmissionStats struct {
	// Shed counts requests rejected by deadline-aware load shedding
	// (estimated queue wait exceeded the request's deadline).
	Shed uint64 `json:"shed"`
	// BreakerRejected counts requests refused because the route's
	// circuit breaker was open.
	BreakerRejected uint64 `json:"breaker_rejected"`
}

// BreakerStats is a point-in-time snapshot of one route's circuit
// breaker.
type BreakerStats struct {
	Route string `json:"route"`
	// State is "closed", "open" or "half-open".
	State string `json:"state"`
	// Samples and Failures describe the sliding outcome window the
	// trip decision reads.
	Samples  int `json:"samples"`
	Failures int `json:"failures"`
	// Trips counts closed→open transitions; Rejected requests refused
	// while open.
	Trips    uint64 `json:"trips"`
	Rejected uint64 `json:"rejected"`
}

// ClusterStats is a point-in-time snapshot of one node's view of the
// sharded cluster (PR 7): its ring membership plus the peer-routing
// counters — how many requests it owned, relayed, failed over, filled
// from a peer's cache, or computed locally as the last resort.
type ClusterStats struct {
	// Self is this node's advertised address; Members the full ring
	// membership (sorted, self included); VirtualNodes the per-member
	// virtual-node count. All three must agree across the cluster.
	Self         string   `json:"self"`
	Members      []string `json:"members"`
	VirtualNodes int      `json:"virtual_nodes"`
	// Owned counts compute requests this node owned on the ring and
	// served itself; Forwarded requests relayed to a peer that
	// answered; ForwardErrors individual peer attempts that failed
	// (connection refused, timeout, 5xx).
	Owned         uint64 `json:"owned"`
	Forwarded     uint64 `json:"forwarded"`
	ForwardErrors uint64 `json:"forward_errors"`
	// Failovers counts preference-order steps past an unavailable
	// peer (dead, timing out, or breaker-open); LocalFallbacks
	// requests for ids this node does not own that it computed anyway
	// because no preferred peer could — capacity degraded,
	// availability kept.
	Failovers      uint64 `json:"failovers"`
	LocalFallbacks uint64 `json:"local_fallbacks"`
	// PeerFills counts results fetched from a peer's cache instead of
	// recomputed; PeerFillCorrupt fetched bodies rejected because
	// their bytes did not match the advertised content sum (never
	// stored, never served).
	PeerFills       uint64 `json:"peer_fills"`
	PeerFillCorrupt uint64 `json:"peer_fill_corrupt"`
	// PeerBreakers snapshots the per-peer circuit breakers guarding
	// forwards and fills, keyed by peer address in Route.
	PeerBreakers []BreakerStats `json:"peer_breakers"`
}

// RouteStats summarises one HTTP route's traffic: request count,
// error responses (status ≥ 400) and a latency sketch read from the
// per-route power-of-two histogram (internal/stats).
type RouteStats struct {
	Route  string `json:"route"`
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	// MeanMicros is the exact running mean; the quantiles are upper
	// bounds of the power-of-two microsecond bucket the quantile
	// falls in, so they are conservative by at most 2×.
	MeanMicros float64 `json:"mean_us"`
	P50Micros  uint64  `json:"p50_us"`
	P95Micros  uint64  `json:"p95_us"`
	P99Micros  uint64  `json:"p99_us"`
	MaxMicros  uint64  `json:"max_us"`
}
