package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"starperf/internal/desim"
)

// The exporters write byte-deterministic output: fixed column orders,
// %g float formatting and no timestamps, so identical runs produce
// identical files (the repo's determinism gate extends to artifacts).

// WriteSeriesCSV writes the gauge time series as CSV, one row per
// sample.
func (m Metrics) WriteSeriesCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,busy_channels,chan_util,vc_occupancy,class_a_busy,class_b_busy,queued,max_queue"); err != nil {
		return err
	}
	for _, s := range m.Samples {
		_, err := fmt.Fprintf(w, "%d,%d,%g,%g,%d,%d,%d,%d\n",
			s.Cycle, s.BusyChannels, s.ChanUtil, s.VCOccupancy,
			s.ClassABusy, s.ClassBBusy, s.Queued, s.MaxQueue)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteChannelCSV writes the per-physical-channel busy fraction as
// CSV, one row per channel in index order.
func (m Metrics) WriteChannelCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "channel,busy_fraction"); err != nil {
		return err
	}
	for ch, f := range m.ChannelBusy {
		if _, err := fmt.Fprintf(w, "%d,%g\n", ch, f); err != nil {
			return err
		}
	}
	return nil
}

// WriteHopCSV writes the per-hop blocking counters as CSV. The final
// row, labelled "eject", covers the ejection channel.
func (ct Counters) WriteHopCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "hop,grants,blocked,block_prob,mean_wait,wait_per_grant,misroutes"); err != nil {
		return err
	}
	row := func(label string, h HopStats) error {
		_, err := fmt.Fprintf(w, "%s,%d,%d,%g,%g,%g,%d\n",
			label, h.Grants, h.Blocked, h.BlockProb(), h.MeanWait(), h.WaitPerGrant(), h.Misroutes)
		return err
	}
	for i, h := range ct.PerHop {
		if err := row(fmt.Sprintf("%d", i), h); err != nil {
			return err
		}
	}
	return row("eject", ct.Ejection)
}

// WriteJSON writes the summary as indented JSON (field order fixed by
// the struct).
func (s Summary) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteTraceJSONL writes the ring-buffered lifecycle trace as JSON
// Lines, one event per line in emission order. Fields are emitted by
// hand in a fixed order; optional fields (hop/wait/reason/misroute)
// appear only on the kinds that define them, keeping lines compact.
func (c *Collector) WriteTraceJSONL(w io.Writer) error {
	for _, ev := range c.Trace() {
		if err := writeEventJSON(w, ev); err != nil {
			return err
		}
	}
	return nil
}

func writeEventJSON(w io.Writer, ev desim.Event) error {
	if _, err := fmt.Fprintf(w, `{"cycle":%d,"kind":%q,"msg":%d,"node":%d,"vc":%d`,
		ev.Cycle, ev.Kind.String(), ev.Msg, ev.Node, ev.VC); err != nil {
		return err
	}
	switch ev.Kind {
	case desim.EvGrant:
		if _, err := fmt.Fprintf(w, `,"hop":%d,"wait":%d`, ev.Hop, ev.Wait); err != nil {
			return err
		}
		if ev.Misroute {
			if _, err := io.WriteString(w, `,"misroute":true`); err != nil {
				return err
			}
		}
	case desim.EvBlock:
		if _, err := fmt.Fprintf(w, `,"hop":%d,"reason":%q`, ev.Hop, ev.Reason.String()); err != nil {
			return err
		}
	case desim.EvDeliver:
		if _, err := fmt.Fprintf(w, `,"hop":%d`, ev.Hop); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
