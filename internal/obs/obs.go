// Package obs is the standard observability layer of the simulator:
// an opt-in desim.Observer that turns the raw hook stream into
//
//   - cycle-sampled gauges — per-physical-channel utilization,
//     per-VC-class occupancy, injection-queue depth — collected into a
//     fixed-interval time series (Metrics);
//   - a structured message-lifecycle trace (generate → inject →
//     per-hop grant/block → deliver) in a bounded ring buffer with a
//     deterministic JSONL export (Trace, WriteTraceJSONL);
//   - per-hop blocking counters that map one-to-one onto the model's
//     terms (Counters): HopStats.BlockProb is the simulator's
//     counterpart of P_block and HopStats.WaitPerGrant of the
//     P_block·w̄ product of eqs. 6 and 15, localised per hop, while
//     flap denials and misroutes — fault effects outside the model —
//     are separated out so they cannot masquerade as contention.
//
// A Collector observes exactly one run (desim.Config.Observer); the
// sweep harness in internal/experiments attaches a fresh Collector per
// point and exports per-point summaries as CSV/JSON sidecars.
// Observation is passive by the desim.Observer contract: results are
// byte-identical with and without a Collector attached.
package obs

import (
	"starperf/internal/desim"
	"starperf/internal/routing"
)

// Options tunes one Collector. The zero value enables everything at
// default cadence.
type Options struct {
	// SampleEvery is the gauge sampling interval in cycles
	// (default 256 when 0). Each sample sweeps every physical channel
	// and source queue, so the sampling cost is
	// O(Nodes·Slots·V / SampleEvery) per cycle.
	SampleEvery int64
	// TraceCap bounds the lifecycle ring buffer: 0 selects the default
	// 4096 events, negative disables tracing entirely. When the ring
	// is full the oldest events are dropped (and counted), so the ring
	// always holds the most recent window.
	TraceCap int
}

func (o Options) withDefaults() Options {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 256
	}
	if o.TraceCap == 0 {
		o.TraceCap = 4096
	}
	return o
}

// Collector implements desim.Observer. The reports (Metrics,
// Counters, Summary, Trace) are valid after a run returns; attaching
// the same Collector to another run resets it (last run wins).
type Collector struct {
	opts Options
	info desim.RunInfo

	// gauges
	countdown int64
	samples   []Sample
	chanBusy  []uint64 // per physical channel: samples with ≥1 busy VC
	netChans  int      // existing network channels (ChanUtil denominator)

	// counters
	perHop   []HopStats
	ejection HopStats
	byReason [routing.NumBlockReasons]uint64
	lifec    [5]uint64 // per desim.EventKind event counts

	// trace ring
	ring      []desim.Event
	ringStart int
	dropped   uint64
}

// New returns a Collector with the given options.
func New(opts Options) *Collector {
	return &Collector{opts: opts.withDefaults()}
}

// BeginRun resets the Collector and sizes the per-channel
// accumulators from the run's dimensions. The reset makes a Collector
// reusable across runs with last-run-wins semantics — in particular
// the experiments harness may re-run an aborted point at an escalated
// drain window with the same Collector attached.
func (c *Collector) BeginRun(info desim.RunInfo) {
	c.info = info
	c.chanBusy = make([]uint64, info.Probe.Channels())
	c.netChans = 0
	for ch := range c.chanBusy {
		if info.Probe.NetworkChannel(ch) {
			c.netChans++
		}
	}
	c.samples = c.samples[:0]
	c.perHop = make([]HopStats, 0, 8)
	c.ejection = HopStats{}
	c.byReason = [routing.NumBlockReasons]uint64{}
	c.lifec = [5]uint64{}
	c.ring = c.ring[:0]
	c.ringStart = 0
	c.dropped = 0
	c.countdown = 1 // sample the first cycle, then every SampleEvery
}

// hop returns the per-hop accumulator for index h, growing the slice
// as deeper hops appear (bounded by the topology diameter plus any
// misroute detours).
func (c *Collector) hop(h int32) *HopStats {
	for int(h) >= len(c.perHop) {
		c.perHop = append(c.perHop, HopStats{})
	}
	return &c.perHop[h]
}

// HandleEvent folds one lifecycle event into the counters and the
// trace ring.
func (c *Collector) HandleEvent(ev desim.Event) {
	if int(ev.Kind) < len(c.lifec) {
		c.lifec[ev.Kind]++
	}
	switch ev.Kind {
	case desim.EvGrant:
		st := &c.ejection
		if c.isNetworkVC(ev.VC) {
			st = c.hop(ev.Hop)
		}
		st.Grants++
		st.WaitSum += uint64(ev.Wait)
		if ev.Misroute {
			st.Misroutes++
		}
	case desim.EvBlock:
		if int(ev.Reason) < len(c.byReason) {
			c.byReason[ev.Reason]++
		}
		if ev.Reason == routing.BlockEjectionBusy {
			c.ejection.Blocked++
		} else {
			c.hop(ev.Hop).Blocked++
		}
	}
	if c.opts.TraceCap > 0 {
		if len(c.ring) < c.opts.TraceCap {
			c.ring = append(c.ring, ev)
		} else {
			c.ring[c.ringStart] = ev
			c.ringStart++
			if c.ringStart == len(c.ring) {
				c.ringStart = 0
			}
			c.dropped++
		}
	}
}

// isNetworkVC reports whether global VC index gvc lies on a network
// channel (as opposed to the ejection/injection slots).
func (c *Collector) isNetworkVC(gvc int32) bool {
	if gvc < 0 {
		return false
	}
	ch := int(gvc) / c.info.V
	return ch%c.info.Slots < c.info.Degree
}

// EndCycle samples the gauges every SampleEvery cycles.
func (c *Collector) EndCycle(cycle int64) {
	c.countdown--
	if c.countdown > 0 {
		return
	}
	c.countdown = c.opts.SampleEvery
	p := c.info.Probe
	s := Sample{Cycle: cycle}
	busyVCs := 0
	for ch := 0; ch < len(c.chanBusy); ch++ {
		if !p.NetworkChannel(ch) {
			continue
		}
		b := p.BusyVCs(ch)
		if b == 0 {
			continue
		}
		c.chanBusy[ch]++
		s.BusyChannels++
		busyVCs += b
		for vc := 0; vc < c.info.V; vc++ {
			if p.VCBusy(ch, vc) {
				if c.info.Cfg.Spec.IsClassA(vc) {
					s.ClassABusy++
				} else {
					s.ClassBBusy++
				}
			}
		}
	}
	if c.netChans > 0 {
		s.ChanUtil = float64(s.BusyChannels) / float64(c.netChans)
		s.VCOccupancy = float64(busyVCs) / float64(c.netChans*c.info.V)
	}
	s.Queued = p.QueuedTotal()
	for node := 0; node < c.info.Nodes; node++ {
		if q := p.QueueLen(node); q > s.MaxQueue {
			s.MaxQueue = q
		}
	}
	c.samples = append(c.samples, s)
}

// EndRun completes the desim.Observer interface. The Collector needs
// no sealing: all reports read the accumulated state directly.
func (c *Collector) EndRun(*Result) {}

// Result aliases desim.Result for the EndRun signature without
// re-importing desim at every call site.
type Result = desim.Result

// Trace returns the ring-buffered lifecycle events in emission order
// (oldest surviving event first).
func (c *Collector) Trace() []desim.Event {
	out := make([]desim.Event, 0, len(c.ring))
	out = append(out, c.ring[c.ringStart:]...)
	out = append(out, c.ring[:c.ringStart]...)
	return out
}

// TraceDropped counts events evicted from the full ring.
func (c *Collector) TraceDropped() uint64 { return c.dropped }
