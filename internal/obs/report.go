package obs

import (
	"starperf/internal/desim"
	"starperf/internal/routing"
)

// Sample is one fixed-interval gauge snapshot, taken at the end of the
// sampled cycle (after arrivals, injection, routing and transfers).
type Sample struct {
	// Cycle is the simulated cycle the snapshot was taken at.
	Cycle int64
	// BusyChannels is the number of network channels with at least one
	// occupied virtual channel; ChanUtil normalises it by the number of
	// existing network channels.
	BusyChannels int
	ChanUtil     float64
	// VCOccupancy is the busy fraction over all network virtual
	// channels; ClassABusy/ClassBBusy split the busy count by VC class
	// (adaptive class a vs deterministic class b, eq. 13's V1/V2).
	VCOccupancy float64
	ClassABusy  int
	ClassBBusy  int
	// Queued is the total source-queue depth across nodes; MaxQueue the
	// deepest single queue.
	Queued   int
	MaxQueue int
}

// Metrics is the gauge time series of one run.
type Metrics struct {
	// SampleEvery is the sampling interval in cycles.
	SampleEvery int64
	// Samples holds the snapshots in cycle order.
	Samples []Sample
	// ChannelBusy is, per physical channel, the fraction of samples in
	// which the channel had at least one busy VC — the empirical
	// counterpart of the per-channel utilization the model assumes
	// uniform. Injection/ejection slots and missing channels read 0.
	ChannelBusy []float64
}

// Metrics returns the collected gauge time series.
func (c *Collector) Metrics() Metrics {
	m := Metrics{
		SampleEvery: c.opts.SampleEvery,
		Samples:     append([]Sample(nil), c.samples...),
		ChannelBusy: make([]float64, len(c.chanBusy)),
	}
	if n := len(c.samples); n > 0 {
		for ch, busy := range c.chanBusy {
			m.ChannelBusy[ch] = float64(busy) / float64(n)
		}
	}
	return m
}

// HopStats accumulates virtual-channel allocation outcomes at one
// network-hop index (or at ejection).
type HopStats struct {
	// Grants counts successful VC acquisitions; Blocked counts blocking
	// episodes (a header that found no eligible free VC on its first
	// attempt, however many cycles it then waited). WaitSum is the
	// total cycles spent waiting across episodes, and Misroutes the
	// grants taken on a non-minimal channel.
	Grants    uint64
	Blocked   uint64
	WaitSum   uint64
	Misroutes uint64
}

// BlockProb is the fraction of headers that had to wait at this hop —
// the simulator's per-hop counterpart of the model's blocking
// probability P_block (eq. 6).
func (h HopStats) BlockProb() float64 {
	if h.Grants == 0 {
		return 0
	}
	return float64(h.Blocked) / float64(h.Grants)
}

// MeanWait is the mean waiting time of a blocked header — the
// counterpart of the model's w̄ (eq. 15).
func (h HopStats) MeanWait() float64 {
	if h.Blocked == 0 {
		return 0
	}
	return float64(h.WaitSum) / float64(h.Blocked)
}

// WaitPerGrant is the mean wait amortised over all headers,
// BlockProb·MeanWait — the P_block·w̄ product eqs. 6 and 15 feed into
// the per-hop service time.
func (h HopStats) WaitPerGrant() float64 {
	if h.Grants == 0 {
		return 0
	}
	return float64(h.WaitSum) / float64(h.Grants)
}

// Counters is the event-derived tally of one run.
type Counters struct {
	// PerHop indexes network hops from the source (hop 0 is the first
	// network channel); Ejection covers the final ejection-channel
	// acquisition, which the model folds into the last service stage.
	PerHop   []HopStats
	Ejection HopStats
	// ByReason splits blocking episodes by routing.BlockReason;
	// FlapDenials is the link-down share — blocking the fault layer
	// injected rather than eq. 6 contention.
	ByReason    [routing.NumBlockReasons]uint64
	FlapDenials uint64
	// Generated/Injected/Delivered count lifecycle events seen, for
	// cross-checking against desim.Result.
	Generated uint64
	Injected  uint64
	Delivered uint64
}

// Counters returns the accumulated event tallies.
func (c *Collector) Counters() Counters {
	return Counters{
		PerHop:      append([]HopStats(nil), c.perHop...),
		Ejection:    c.ejection,
		ByReason:    c.byReason,
		FlapDenials: c.byReason[routing.BlockLinkDown],
		Generated:   c.lifec[desim.EvGenerate],
		Injected:    c.lifec[desim.EvInject],
		Delivered:   c.lifec[desim.EvDeliver],
	}
}

// Total sums the per-hop network stats (ejection excluded).
func (ct Counters) Total() HopStats {
	var t HopStats
	for _, h := range ct.PerHop {
		t.Grants += h.Grants
		t.Blocked += h.Blocked
		t.WaitSum += h.WaitSum
		t.Misroutes += h.Misroutes
	}
	return t
}

// Summary condenses one run's observations to scalars, the shape the
// experiments sweep exports per point.
type Summary struct {
	Samples         int     `json:"samples"`
	MeanChanUtil    float64 `json:"mean_chan_util"`
	PeakChanUtil    float64 `json:"peak_chan_util"`
	MeanVCOccupancy float64 `json:"mean_vc_occupancy"`
	MeanQueued      float64 `json:"mean_queued"`
	PeakQueue       int     `json:"peak_queue"`
	Grants          uint64  `json:"grants"`
	BlockEpisodes   uint64  `json:"block_episodes"`
	BlockProb       float64 `json:"block_prob"`
	MeanWait        float64 `json:"mean_wait"`
	WaitPerGrant    float64 `json:"wait_per_grant"`
	Misroutes       uint64  `json:"misroutes"`
	FlapDenials     uint64  `json:"flap_denials"`
	TraceDropped    uint64  `json:"trace_dropped"`
}

// Summary condenses the collected metrics and counters.
func (c *Collector) Summary() Summary {
	s := Summary{
		Samples:      len(c.samples),
		FlapDenials:  c.byReason[routing.BlockLinkDown],
		TraceDropped: c.dropped,
	}
	for _, sm := range c.samples {
		s.MeanChanUtil += sm.ChanUtil
		s.MeanVCOccupancy += sm.VCOccupancy
		s.MeanQueued += float64(sm.Queued)
		if sm.ChanUtil > s.PeakChanUtil {
			s.PeakChanUtil = sm.ChanUtil
		}
		if sm.MaxQueue > s.PeakQueue {
			s.PeakQueue = sm.MaxQueue
		}
	}
	if n := len(c.samples); n > 0 {
		s.MeanChanUtil /= float64(n)
		s.MeanVCOccupancy /= float64(n)
		s.MeanQueued /= float64(n)
	}
	t := c.Counters().Total()
	s.Grants = t.Grants
	s.BlockEpisodes = t.Blocked
	s.BlockProb = t.BlockProb()
	s.MeanWait = t.MeanWait()
	s.WaitPerGrant = t.WaitPerGrant()
	s.Misroutes = t.Misroutes
	return s
}
