package obs

import (
	"bytes"
	"testing"

	"starperf/internal/desim"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

// testConfig mirrors the S_4 workload of the desim determinism gate so
// the observer is exercised against a known-good reference run.
func testConfig(c *Collector) desim.Config {
	s4 := stargraph.MustNew(4)
	return desim.Config{
		Top:           s4,
		Spec:          routing.MustNew(routing.EnhancedNbc, s4, 4),
		Policy:        routing.PreferClassA,
		Rate:          0.02,
		MsgLen:        8,
		Seed:          12345,
		WarmupCycles:  1000,
		MeasureCycles: 5000,
		Observer:      c,
	}
}

// TestCollectorCountsMatchResult cross-checks the event-derived
// lifecycle counters against the simulator's own statistics: every
// generate/deliver event must be seen exactly once, and every
// delivered message acquires the ejection channel exactly once.
func TestCollectorCountsMatchResult(t *testing.T) {
	c := New(Options{})
	res, err := desim.Run(testConfig(c))
	if err != nil {
		t.Fatal(err)
	}
	ct := c.Counters()
	if ct.Generated != uint64(res.Generated) {
		t.Errorf("observer saw %d generate events, Result.Generated = %d", ct.Generated, res.Generated)
	}
	if ct.Delivered != uint64(res.Delivered) {
		t.Errorf("observer saw %d deliver events, Result.Delivered = %d", ct.Delivered, res.Delivered)
	}
	// Every delivery is preceded by exactly one ejection grant; a few
	// messages can hold an ejection VC at run end without having
	// delivered their tail yet.
	if ct.Ejection.Grants < ct.Delivered || ct.Ejection.Grants > ct.Injected {
		t.Errorf("ejection grants = %d, want within [delivered=%d, injected=%d]",
			ct.Ejection.Grants, ct.Delivered, ct.Injected)
	}
	if ct.Injected < ct.Delivered {
		t.Errorf("injected (%d) < delivered (%d)", ct.Injected, ct.Delivered)
	}
	total := ct.Total()
	if total.Grants == 0 {
		t.Fatal("no network grants observed")
	}
	// Each injected message takes ≥1 network hop on S_4 under uniform
	// traffic minus self-addressed messages; grants must at least cover
	// the delivered messages.
	if total.Grants < ct.Delivered {
		t.Errorf("network grants (%d) < delivered (%d)", total.Grants, ct.Delivered)
	}
	for i, h := range ct.PerHop {
		if p := h.BlockProb(); p < 0 {
			t.Errorf("hop %d: negative block probability %g", i, p)
		}
		if h.WaitSum > 0 && h.Blocked == 0 {
			t.Errorf("hop %d: wait recorded without a blocking episode", i)
		}
	}
}

// TestCollectorGauges checks the fixed-interval sampling contract:
// cadence, bounds and the per-channel busy fractions.
func TestCollectorGauges(t *testing.T) {
	c := New(Options{SampleEvery: 128})
	res, err := desim.Run(testConfig(c))
	if err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.SampleEvery != 128 {
		t.Fatalf("SampleEvery = %d, want 128", m.SampleEvery)
	}
	if len(m.Samples) == 0 {
		t.Fatal("no gauge samples collected")
	}
	wantSamples := int(res.Cycles/128) + 1 // cycle 0 is sampled too
	if len(m.Samples) != wantSamples {
		t.Errorf("collected %d samples over %d cycles, want %d", len(m.Samples), res.Cycles, wantSamples)
	}
	for i, s := range m.Samples {
		if i > 0 && s.Cycle != m.Samples[i-1].Cycle+128 {
			t.Fatalf("sample %d at cycle %d, previous at %d: cadence broken", i, s.Cycle, m.Samples[i-1].Cycle)
		}
		if s.ChanUtil < 0 || s.ChanUtil > 1 {
			t.Errorf("sample %d: ChanUtil %g out of [0,1]", i, s.ChanUtil)
		}
		if s.VCOccupancy < 0 || s.VCOccupancy > 1 {
			t.Errorf("sample %d: VCOccupancy %g out of [0,1]", i, s.VCOccupancy)
		}
		if s.ClassABusy+s.ClassBBusy > 0 && s.BusyChannels == 0 {
			t.Errorf("sample %d: busy VCs without busy channels", i)
		}
	}
	// S_4: 24 nodes, degree 3, slots 5.
	if want := 24 * 5; len(m.ChannelBusy) != want {
		t.Fatalf("ChannelBusy has %d entries, want %d", len(m.ChannelBusy), want)
	}
	sawBusy := false
	for ch, f := range m.ChannelBusy {
		if f < 0 || f > 1 {
			t.Errorf("channel %d: busy fraction %g out of [0,1]", ch, f)
		}
		if f > 0 {
			sawBusy = true
		}
		// Injection/ejection slots are never counted as network-busy.
		if slot := ch % 5; slot >= 3 && f != 0 {
			t.Errorf("non-network channel %d (slot %d) has busy fraction %g", ch, slot, f)
		}
	}
	if !sawBusy {
		t.Error("no network channel ever sampled busy")
	}
	sum := c.Summary()
	if sum.Samples != len(m.Samples) {
		t.Errorf("Summary.Samples = %d, want %d", sum.Samples, len(m.Samples))
	}
	if sum.MeanChanUtil <= 0 || sum.PeakChanUtil < sum.MeanChanUtil {
		t.Errorf("implausible utilization summary: mean %g, peak %g", sum.MeanChanUtil, sum.PeakChanUtil)
	}
}

// TestTraceRing checks the bounded ring: it retains the most recent
// window in emission order and counts evictions.
func TestTraceRing(t *testing.T) {
	c := New(Options{TraceCap: 100})
	if _, err := desim.Run(testConfig(c)); err != nil {
		t.Fatal(err)
	}
	tr := c.Trace()
	if len(tr) != 100 {
		t.Fatalf("ring holds %d events, want 100", len(tr))
	}
	if c.TraceDropped() == 0 {
		t.Fatal("expected evictions from a 100-event ring over a 6000-cycle run")
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Cycle < tr[i-1].Cycle {
			t.Fatalf("ring out of order: event %d at cycle %d after cycle %d", i, tr[i].Cycle, tr[i-1].Cycle)
		}
	}
}

// TestTraceDisabled checks that a negative TraceCap records nothing.
func TestTraceDisabled(t *testing.T) {
	c := New(Options{TraceCap: -1})
	if _, err := desim.Run(testConfig(c)); err != nil {
		t.Fatal(err)
	}
	if n := len(c.Trace()); n != 0 {
		t.Fatalf("tracing disabled but ring holds %d events", n)
	}
	if c.TraceDropped() != 0 {
		t.Fatalf("tracing disabled but %d drops counted", c.TraceDropped())
	}
	if len(c.Counters().PerHop) == 0 {
		t.Fatal("counters must keep accumulating with tracing disabled")
	}
}

// TestExportDeterministic runs the same configuration twice and
// requires byte-identical exports — the artifact-level extension of
// the simulator's determinism gate.
func TestExportDeterministic(t *testing.T) {
	render := func() (series, channels, hops, summary, trace []byte) {
		c := New(Options{SampleEvery: 200, TraceCap: 256})
		if _, err := desim.Run(testConfig(c)); err != nil {
			t.Fatal(err)
		}
		var b1, b2, b3, b4, b5 bytes.Buffer
		if err := c.Metrics().WriteSeriesCSV(&b1); err != nil {
			t.Fatal(err)
		}
		if err := c.Metrics().WriteChannelCSV(&b2); err != nil {
			t.Fatal(err)
		}
		if err := c.Counters().WriteHopCSV(&b3); err != nil {
			t.Fatal(err)
		}
		if err := c.Summary().WriteJSON(&b4); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteTraceJSONL(&b5); err != nil {
			t.Fatal(err)
		}
		return b1.Bytes(), b2.Bytes(), b3.Bytes(), b4.Bytes(), b5.Bytes()
	}
	s1, ch1, h1, j1, t1 := render()
	s2, ch2, h2, j2, t2 := render()
	for _, cmp := range []struct {
		name string
		a, b []byte
	}{
		{"series CSV", s1, s2},
		{"channel CSV", ch1, ch2},
		{"hop CSV", h1, h2},
		{"summary JSON", j1, j2},
		{"trace JSONL", t1, t2},
	} {
		if !bytes.Equal(cmp.a, cmp.b) {
			t.Errorf("%s differs between identical runs", cmp.name)
		}
		if len(cmp.a) == 0 {
			t.Errorf("%s is empty", cmp.name)
		}
	}
	// Spot-check the JSONL shape: every line is a JSON object.
	for _, line := range bytes.Split(bytes.TrimSpace(t1), []byte("\n")) {
		if len(line) == 0 || line[0] != '{' || line[len(line)-1] != '}' {
			t.Fatalf("malformed JSONL line: %q", line)
		}
	}
}

// TestBlockReasonSplit drives the network hard enough to block and
// checks the reason split stays consistent with the totals.
func TestBlockReasonSplit(t *testing.T) {
	c := New(Options{})
	cfg := testConfig(c)
	cfg.Rate = 0.12 // near saturation for S_4 at V=4
	cfg.DrainCycles = 20000
	if _, err := desim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	ct := c.Counters()
	var byReason uint64
	for _, n := range ct.ByReason {
		byReason += n
	}
	episodes := ct.Total().Blocked + ct.Ejection.Blocked
	if byReason != episodes {
		t.Errorf("reason split sums to %d, episodes total %d", byReason, episodes)
	}
	if episodes == 0 {
		t.Fatal("near-saturation run produced no blocking episodes")
	}
	if ct.ByReason[routing.BlockNone] != 0 {
		t.Errorf("%d episodes tagged BlockNone", ct.ByReason[routing.BlockNone])
	}
	if ct.FlapDenials != ct.ByReason[routing.BlockLinkDown] {
		t.Errorf("FlapDenials = %d, ByReason[link-down] = %d", ct.FlapDenials, ct.ByReason[routing.BlockLinkDown])
	}
	if ct.Total().WaitSum == 0 {
		t.Error("blocking episodes recorded but zero aggregate wait")
	}
}
