package floats

import (
	"math"
	"testing"
)

func TestEqualWithin(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{0, 0, 0, true},
		{1, 1 + 1e-15, 1e-12, true},               // relative rounding noise
		{1e300, 1e300 * (1 + 1e-14), 1e-12, true}, // huge magnitudes, relative
		{1e-300, 0, 1e-12, true},                  // absolute near zero
		{1, 2, 1e-12, false},
		{1, 1.001, 1e-6, false},
		{inf, inf, 0, true},
		{inf, -inf, 1e300, false},
		{nan, nan, inf, false},
		{nan, 1, inf, false},
		{-1, 1, 0.5, false},
	}
	for _, c := range cases {
		if got := EqualWithin(c.a, c.b, c.tol); got != c.want {
			t.Errorf("EqualWithin(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
		if got := EqualWithin(c.b, c.a, c.tol); got != c.want {
			t.Errorf("EqualWithin(%v, %v, %v) = %v, want %v (symmetry)", c.b, c.a, c.tol, got, c.want)
		}
	}
}

func TestClose(t *testing.T) {
	if !Close(1.0/3, (1 - 2.0/3)) {
		t.Error("Close rejected rounding noise")
	}
	if Close(1, 1+1e-9) {
		t.Error("Close accepted a genuine difference")
	}
}
