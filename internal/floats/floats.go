// Package floats provides tolerance-based floating-point comparisons
// for the analytical model and its tests. Exact == / != on floats is
// banned in internal/model and internal/queueing by the starlint
// floateq rule (see internal/lint): rounding differences between
// architectures, optimisation levels and evaluation orders make exact
// equality a latent nondeterminism bug in the fixed-point iteration.
// This package is the designated escape hatch.
package floats

import "math"

// DefaultTol is the tolerance used by Close: tight enough to treat
// only genuine rounding noise as equal, loose enough to survive a
// different summation order.
const DefaultTol = 1e-12

// EqualWithin reports whether a and b are equal to within tol,
// interpreted as an absolute tolerance near zero and a relative
// tolerance (scaled by the larger magnitude) otherwise. NaN compares
// unequal to everything, including itself; equal infinities compare
// equal. tol must be non-negative.
func EqualWithin(a, b, tol float64) bool {
	if a == b { // covers equal infinities and exact hits
		return true
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities stay unequal at any tolerance
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Close is EqualWithin with DefaultTol.
func Close(a, b float64) bool { return EqualWithin(a, b, DefaultTol) }
