// Package stats provides the streaming statistics used by the
// simulator and the experiment harness: Welford mean/variance
// accumulators, integer histograms, batch-means confidence intervals
// and simple series summaries. Everything is allocation-light and
// suitable for per-cycle hot paths.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream is a single-pass mean/variance accumulator (Welford's
// algorithm). The zero value is ready to use.
type Stream struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the stream.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() uint64 { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 when empty).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Stream) Max() float64 { return s.max }

// Merge folds another stream into s (parallel Welford combination).
func (s *Stream) Merge(o *Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.mean += delta * float64(o.n) / float64(n)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// Reset clears the stream.
func (s *Stream) Reset() { *s = Stream{} }

// String summarises the stream.
func (s *Stream) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Histogram counts integer-valued observations in [0, len(bins)).
// Negative values are clamped into bin 0; values at or above the bin
// range land in an explicit overflow bucket (Overflow count plus the
// largest value seen, OverflowMax) instead of silently inflating the
// last bin, so a capped tail stays detectable. Clamped counts every
// out-of-range observation in either direction.
type Histogram struct {
	Bins        []uint64
	Clamped     uint64
	Overflow    uint64
	OverflowMax int
	total       uint64
	sum         float64
}

// NewHistogram returns a histogram with n bins.
func NewHistogram(n int) *Histogram { return &Histogram{Bins: make([]uint64, n)} }

// Add counts one observation.
func (h *Histogram) Add(v int) {
	h.total++
	h.sum += float64(v)
	if v < 0 {
		h.Clamped++
		h.Bins[0]++
		return
	}
	if v >= len(h.Bins) {
		h.Clamped++
		h.Overflow++
		if v > h.OverflowMax {
			h.OverflowMax = v
		}
		return
	}
	h.Bins[v]++
}

// Total returns the observation count.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the mean of the raw (unclamped) observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns the smallest bin index q such that at least
// p·Total() observations fall in bins 0..q. p must be in (0,1].
// When the target rank falls inside the overflow bucket (the
// observation is off the right edge of the bin range), Quantile
// returns OverflowMax — a conservative upper estimate rather than a
// silently-capped len(Bins)-1.
func (h *Histogram) Quantile(p float64) int {
	if h.total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.total)))
	var cum uint64
	for i, c := range h.Bins {
		cum += c
		if cum >= target {
			return i
		}
	}
	if h.Overflow > 0 {
		return h.OverflowMax
	}
	return len(h.Bins) - 1
}

// Max returns the largest observed value: OverflowMax when any
// observation overflowed, otherwise the highest non-empty bin (0 when
// empty).
func (h *Histogram) Max() int {
	if h.Overflow > 0 {
		return h.OverflowMax
	}
	for i := len(h.Bins) - 1; i >= 0; i-- {
		if h.Bins[i] > 0 {
			return i
		}
	}
	return 0
}

// BatchMeans estimates a confidence interval for a steady-state mean
// from a stream of correlated observations by the method of batch
// means: observations are grouped into fixed-size batches whose means
// are treated as approximately independent.
type BatchMeans struct {
	batchSize uint64
	cur       Stream
	batches   Stream
}

// NewBatchMeans creates an estimator with the given batch size.
func NewBatchMeans(batchSize uint64) *BatchMeans {
	if batchSize == 0 {
		panic("stats: batch size must be positive")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add folds one observation.
func (b *BatchMeans) Add(x float64) {
	b.cur.Add(x)
	if b.cur.N() == b.batchSize {
		b.batches.Add(b.cur.Mean())
		b.cur.Reset()
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() uint64 { return b.batches.N() }

// Mean returns the grand mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// HalfWidth returns the half-width of the ~95% confidence interval of
// the mean (normal approximation over batch means; returns +Inf with
// fewer than 2 batches).
func (b *BatchMeans) HalfWidth() float64 {
	n := b.batches.N()
	if n < 2 {
		return math.Inf(1)
	}
	return 1.96 * b.batches.StdDev() / math.Sqrt(float64(n))
}

// RelHalfWidth returns HalfWidth()/|Mean()| (+Inf when the mean is 0
// or fewer than 2 batches exist).
func (b *BatchMeans) RelHalfWidth() float64 {
	m := b.Mean()
	if m == 0 {
		return math.Inf(1)
	}
	return b.HalfWidth() / math.Abs(m)
}

// Series is a finished sample set with order statistics, used by the
// experiment harness to summarise replications.
type Series struct {
	xs []float64
}

// NewSeries copies xs into a Series.
func NewSeries(xs []float64) *Series {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return &Series{xs: cp}
}

// N returns the sample count.
func (s *Series) N() int { return len(s.xs) }

// Mean returns the sample mean.
func (s *Series) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Quantile returns the p-quantile by linear interpolation, p ∈ [0,1].
func (s *Series) Quantile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return s.xs[0]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo, hi = 0, 0
	}
	if hi >= n {
		lo, hi = n-1, n-1
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// MSER computes the MSER truncation point of a time series: the
// prefix length d minimising
//
//	MSER(d) = Σ_{i≥d} (x_i − x̄_d)² / (n−d)²
//
// where x̄_d is the mean of the retained suffix. It is the standard
// data-driven warm-up detector for steady-state simulations (White,
// 1997). The search is restricted to d ≤ n/2; ok is false when the
// minimum sits at the boundary (no steady state detected) or the
// series is shorter than 8 points.
func MSER(xs []float64) (d int, ok bool) {
	n := len(xs)
	if n < 8 {
		return 0, false
	}
	// suffix sums for O(n) evaluation
	sum := make([]float64, n+1)
	sum2 := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		sum[i] = sum[i+1] + xs[i]
		sum2[i] = sum2[i+1] + xs[i]*xs[i]
	}
	best, bestD := math.Inf(1), 0
	for cut := 0; cut <= n/2; cut++ {
		m := float64(n - cut)
		mean := sum[cut] / m
		sse := sum2[cut] - m*mean*mean
		if sse < 0 {
			sse = 0
		}
		v := sse / (m * m)
		if v < best {
			best, bestD = v, cut
		}
	}
	return bestD, bestD < n/2
}
