package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestStreamBasics(t *testing.T) {
	var s Stream
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || !almostEq(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean %v", s.Mean())
	}
	// population variance is 4; sample variance = 32/7
	if !almostEq(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestStreamMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		cut := rng.Intn(n + 1)
		var whole, a, b Stream
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*10 + 3
			whole.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			almostEq(a.Mean(), whole.Mean(), 1e-9) &&
			almostEq(a.Variance(), whole.Variance(), 1e-7) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamReset(t *testing.T) {
	var s Stream
	s.Add(1)
	s.Reset()
	if s.N() != 0 || s.Mean() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []int{0, 1, 1, 2, 4, 7, -1} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Clamped != 2 {
		t.Fatalf("clamped %d", h.Clamped)
	}
	// 7 lands in the overflow bucket, not in Bins[4]; -1 clamps into
	// bin 0.
	if h.Overflow != 1 || h.OverflowMax != 7 {
		t.Fatalf("overflow %d max %d", h.Overflow, h.OverflowMax)
	}
	if h.Bins[1] != 2 || h.Bins[4] != 1 || h.Bins[0] != 2 {
		t.Fatalf("bins %v", h.Bins)
	}
	if !almostEq(h.Mean(), 2, 1e-12) {
		t.Fatalf("mean %v", h.Mean())
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("median bin %d", q)
	}
	// The max rank sits in the overflow bucket → the true max, not
	// the last bin index.
	if q := h.Quantile(1.0); q != 7 {
		t.Fatalf("max quantile %d", q)
	}
	if h.Max() != 7 {
		t.Fatalf("max %d", h.Max())
	}
}

func TestHistogramNoOverflow(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int{1, 3, 3, 5} {
		h.Add(v)
	}
	if h.Overflow != 0 || h.Clamped != 0 {
		t.Fatalf("spurious overflow %d clamped %d", h.Overflow, h.Clamped)
	}
	if q := h.Quantile(1.0); q != 5 {
		t.Fatalf("max quantile %d", q)
	}
	if h.Max() != 5 {
		t.Fatalf("max %d", h.Max())
	}
	if NewHistogram(4).Max() != 0 {
		t.Fatal("empty histogram max")
	}
}

// TestHistogramSparseTail pins the extreme-quantile behaviour the
// bounds validation harness relies on: with a sparse tail that
// overflows the bin range, Quantile(0.999)/Quantile(0.9999) must
// surface the overflow (via OverflowMax) exactly when the target rank
// crosses into the overflow bucket — never a silently-capped bin
// index.
func TestHistogramSparseTail(t *testing.T) {
	h := NewHistogram(1 << 10)
	// 10_000 in-range samples, then 3 tail samples beyond the cap.
	for i := 0; i < 10000; i++ {
		h.Add(i % 100)
	}
	for _, v := range []int{5000, 6000, 123456} {
		h.Add(v)
	}
	// 0.999·10003 → rank 9993, still inside the binned mass.
	if q := h.Quantile(0.999); q != 99 {
		t.Fatalf("p99.9 %d, want 99 (rank inside bins)", q)
	}
	// 0.9999·10003 → rank 10003 ≥ 10000 binned samples: overflow.
	if q := h.Quantile(0.9999); q != 123456 {
		t.Fatalf("p99.99 %d, want OverflowMax 123456", q)
	}
	if q := h.Quantile(1.0); q != 123456 {
		t.Fatalf("p100 %d, want OverflowMax 123456", q)
	}
	if h.Overflow != 3 || h.Clamped != 3 {
		t.Fatalf("overflow %d clamped %d", h.Overflow, h.Clamped)
	}
}

func TestBatchMeansIID(t *testing.T) {
	// On i.i.d. data the CI should cover the true mean most of the
	// time; with a fixed seed just assert the interval is sane.
	b := NewBatchMeans(100)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100*50; i++ {
		b.Add(rng.NormFloat64() + 10)
	}
	if b.Batches() != 50 {
		t.Fatalf("batches %d", b.Batches())
	}
	if !almostEq(b.Mean(), 10, 0.1) {
		t.Fatalf("mean %v", b.Mean())
	}
	hw := b.HalfWidth()
	if hw <= 0 || hw > 0.2 {
		t.Fatalf("half width %v", hw)
	}
	if math.Abs(b.Mean()-10) > 3*hw {
		t.Fatalf("true mean outside 3x CI: mean=%v hw=%v", b.Mean(), hw)
	}
	if rel := b.RelHalfWidth(); !almostEq(rel, hw/b.Mean(), 1e-12) {
		t.Fatalf("rel half width %v", rel)
	}
}

func TestBatchMeansEdgeCases(t *testing.T) {
	b := NewBatchMeans(10)
	if !math.IsInf(b.HalfWidth(), 1) {
		t.Fatal("half width should be +Inf with no batches")
	}
	for i := 0; i < 10; i++ {
		b.Add(1)
	}
	if !math.IsInf(b.HalfWidth(), 1) {
		t.Fatal("half width should be +Inf with one batch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewBatchMeans(0) did not panic")
		}
	}()
	NewBatchMeans(0)
}

func TestSeriesQuantiles(t *testing.T) {
	s := NewSeries([]float64{3, 1, 2, 4})
	if s.N() != 4 || !almostEq(s.Mean(), 2.5, 1e-12) {
		t.Fatalf("series %v %v", s.N(), s.Mean())
	}
	if !almostEq(s.Quantile(0), 1, 1e-12) || !almostEq(s.Quantile(1), 4, 1e-12) {
		t.Fatal("extreme quantiles wrong")
	}
	if !almostEq(s.Quantile(0.5), 2.5, 1e-12) {
		t.Fatalf("median %v", s.Quantile(0.5))
	}
	if !math.IsNaN(NewSeries(nil).Quantile(0.5)) {
		t.Fatal("empty series quantile should be NaN")
	}
	one := NewSeries([]float64{7})
	if one.Quantile(0.3) != 7 {
		t.Fatal("singleton quantile")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		s := NewSeries(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := s.Quantile(p)
			if q < prev-1e-12 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMSERSyntheticTransient(t *testing.T) {
	// A decaying transient followed by stationary noise: MSER must
	// truncate near the end of the transient.
	rng := rand.New(rand.NewSource(31))
	xs := make([]float64, 200)
	for i := range xs {
		base := 10.0
		if i < 40 {
			base = 10 + 50*math.Exp(-float64(i)/8)
		}
		xs[i] = base + rng.NormFloat64()
	}
	d, ok := MSER(xs)
	if !ok {
		t.Fatal("MSER found no steady state on a clearly stationary tail")
	}
	if d < 10 || d > 70 {
		t.Fatalf("MSER truncation %d far from the transient end (~40)", d)
	}
}

func TestMSERStationary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()
	}
	d, ok := MSER(xs)
	if !ok {
		t.Fatal("stationary series rejected")
	}
	if d > 30 {
		t.Fatalf("stationary series truncated at %d", d)
	}
}

func TestMSEREdgeCases(t *testing.T) {
	if _, ok := MSER(nil); ok {
		t.Fatal("empty series accepted")
	}
	if _, ok := MSER([]float64{1, 2, 3}); ok {
		t.Fatal("tiny series accepted")
	}
	// a series that never settles (linear ramp): minimum hugs the
	// boundary, so ok must be false
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	if _, ok := MSER(xs); ok {
		t.Fatal("ramp series accepted as stationary")
	}
}
