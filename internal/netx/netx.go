// Package netx is the network seam under the serving layer's HTTP
// paths, the transport-level twin of internal/fsx. The production
// transport is whatever http.RoundTripper the caller already uses;
// the Net wrapper injects deterministic, seed-drawn network faults —
// connection refusal, black holes that hang until the caller's
// deadline, added latency, partition windows severing two host sets
// for a span of operations, mid-body connection resets, truncated
// bodies, and corrupt-byte flips — so the cluster drills and the soak
// harness can prove the forwarding/failover/checksum machinery holds
// under any seed instead of the faults a flaky network happens to
// produce.
//
// Mirroring fsx.Faulty: every decision is drawn from a PRNG seeded by
// the plan, a global operation counter orders decisions, and the same
// plan over the same request sequence injects the same faults. One
// Net is shared by all nodes of an in-process cluster; each node
// wraps its outbound transport with Transport(self, inner) so the
// (src, dst) pair of every request is known and per-pair rules and
// partitions apply.
package netx

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrInjected is the root of every injected fault: errors.Is(err,
// ErrInjected) distinguishes plan-drawn failures from real transport
// errors. Callers must treat it exactly like a real network error.
var ErrInjected = errors.New("netx: injected fault")

// Fault kinds, recorded on FaultError and in Stats.
const (
	KindRefused   = "refused"   // connection refused before any bytes
	KindPartition = "partition" // severed by an active partition window
	KindBlackhole = "blackhole" // hung until the request context ended
	KindDelay     = "delay"     // injected latency outlived the deadline
	KindReset     = "reset"     // connection reset mid-body
)

// Rule is the per-(src,dst)-pair fault mix. Probabilities are in
// [0, 1] and independent: each request first draws refusal, then
// black-holing, then latency, then at most one body fault (reset,
// truncate, corrupt — tried in that order). The zero Rule injects
// nothing.
type Rule struct {
	// PRefuse fails the request immediately, before any bytes move —
	// the connection-refused shape of a dead listener.
	PRefuse float64 `json:"p_refuse,omitempty"`
	// PBlackhole accepts the request and then hangs until the request
	// context is done — the packets-into-the-void shape of a silently
	// dropped route. A request without a deadline hangs forever.
	PBlackhole float64 `json:"p_blackhole,omitempty"`
	// PDelay sleeps Delay before forwarding — a slow peer. The sleep
	// is cut short by the request context, surfacing its error.
	PDelay float64 `json:"p_delay,omitempty"`
	// Delay is the latency injected when PDelay fires.
	Delay time.Duration `json:"delay_ns,omitempty"`
	// PReset lets the response start and then fails a mid-body Read
	// with a connection-reset error: the caller has real bytes and no
	// way to finish.
	PReset float64 `json:"p_reset,omitempty"`
	// PTruncate ends the body early with a clean EOF — a short read
	// that only a length check or a checksum can catch.
	PTruncate float64 `json:"p_truncate,omitempty"`
	// PCorrupt flips one byte of the body — a payload only a checksum
	// can catch.
	PCorrupt float64 `json:"p_corrupt,omitempty"`
}

// Partition severs every request crossing between host sets A and B,
// in both directions, for a window of global operations. Hosts are
// matched against the request URL's host ("127.0.0.1:19201").
type Partition struct {
	A []string `json:"a"`
	B []string `json:"b"`
	// FromOp is the first severed operation (1-based); 0 severs from
	// the start.
	FromOp int `json:"from_op,omitempty"`
	// ToOp is the last severed operation; 0 severs forever (until
	// Heal or SetPartitions).
	ToOp int `json:"to_op,omitempty"`
}

// severs reports whether the partition cuts src↔dst at operation op.
func (p Partition) severs(src, dst string, op int) bool {
	if p.FromOp > 0 && op < p.FromOp {
		return false
	}
	if p.ToOp > 0 && op > p.ToOp {
		return false
	}
	return (hostIn(p.A, src) && hostIn(p.B, dst)) ||
		(hostIn(p.B, src) && hostIn(p.A, dst))
}

func hostIn(set []string, host string) bool {
	for _, h := range set {
		if h == host {
			return true
		}
	}
	return false
}

// Plan configures a Net. All decisions are drawn from a PRNG seeded
// with Seed, so the same plan over the same operation sequence
// injects the same faults — chaos runs are replayable. The JSON form
// is what cmd/starperfd's -chaosnet flag loads.
type Plan struct {
	// Seed fully determines which operations fail.
	Seed uint64 `json:"seed"`
	// Default applies to every (src, dst) pair without its own entry.
	Default Rule `json:"default,omitempty"`
	// Pairs overrides Default for exact "src>dst" keys (directional:
	// "a:1>b:2" governs requests from a:1 to b:2 only).
	Pairs map[string]Rule `json:"pairs,omitempty"`
	// Partitions are the severed host-set windows.
	Partitions []Partition `json:"partitions,omitempty"`
}

// Stats counts operations and injected faults by kind. Fields are a
// struct, not a map, so readers need no ordering discipline.
type Stats struct {
	Ops         int `json:"ops"`
	Refused     int `json:"refused"`
	Partitioned int `json:"partitioned"`
	Blackholed  int `json:"blackholed"`
	Delayed     int `json:"delayed"`
	Resets      int `json:"resets"`
	Truncated   int `json:"truncated"`
	Corrupted   int `json:"corrupted"`
}

// Obs describes one request at decision time, delivered to the
// observer hook before the request proceeds (or is refused). The soak
// harness's invariant checker uses it to watch forwarded deadlines.
type Obs struct {
	Op       int
	Src, Dst string
	// Header is a clone of the outbound request headers.
	Header http.Header
}

// Net is a shared fault-injection fabric. It is safe for concurrent
// use; decisions are serialised by a mutex, the faults themselves
// (sleeps, hangs, body reads) happen outside it.
type Net struct {
	mu       sync.Mutex
	plan     Plan
	rng      *rand.Rand
	stats    Stats
	healed   bool
	observer func(Obs)
}

// New builds a Net from plan.
func New(plan Plan) *Net {
	return &Net{
		plan: plan,
		rng:  rand.New(rand.NewSource(int64(plan.Seed))),
	}
}

// Observe installs fn as the observer hook, called once per decided
// request (including refused ones) with cloned headers. Pass nil to
// remove it. fn runs outside the Net's mutex and must be safe for
// concurrent calls.
func (n *Net) Observe(fn func(Obs)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observer = fn
}

// SetPartitions replaces the plan's partitions at runtime — how a
// drill splits a live ring mid-test — and clears a previous Heal.
func (n *Net) SetPartitions(ps []Partition) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.plan.Partitions = ps
	n.healed = false
}

// Heal ends all injection: partitions stop severing and every fault
// probability reads as zero until SetPartitions re-arms the fabric.
// The op counter keeps advancing so observation order is preserved.
func (n *Net) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.healed = true
}

// Stats returns a snapshot of the fault counters.
func (n *Net) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Transport wraps inner (nil means http.DefaultTransport) as the
// outbound transport of node src. The returned RoundTripper applies
// the plan to every request, keyed by (src, request host).
func (n *Net) Transport(src string, inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &transport{n: n, src: src, inner: inner}
}

// Client is a convenience: an *http.Client whose transport is
// Transport(src, inner).
func (n *Net) Client(src string, inner http.RoundTripper) *http.Client {
	return &http.Client{Transport: n.Transport(src, inner)}
}

// Body fault selectors.
const (
	bodyNone = iota
	bodyReset
	bodyTruncate
	bodyCorrupt
)

// verdict is one request's drawn fate.
type verdict struct {
	op          int
	refused     bool
	partitioned bool
	blackhole   bool
	delay       time.Duration
	body        int
	cut         int // byte offset the body fault lands at
}

// decide advances the op counter and draws the request's fate under
// the mutex; everything the verdict orders happens outside it.
func (n *Net) decide(src, dst string) (verdict, func(Obs)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats.Ops++
	v := verdict{op: n.stats.Ops}
	ob := n.observer
	if n.healed {
		return v, ob
	}
	for _, p := range n.plan.Partitions {
		if p.severs(src, dst, v.op) {
			v.partitioned = true
			n.stats.Partitioned++
			return v, ob
		}
	}
	rule := n.plan.Default
	if r, ok := n.plan.Pairs[src+">"+dst]; ok {
		rule = r
	}
	draw := func(p float64) bool { return p > 0 && n.rng.Float64() < p }
	switch {
	case draw(rule.PRefuse):
		v.refused = true
		n.stats.Refused++
		return v, ob
	case draw(rule.PBlackhole):
		v.blackhole = true
		n.stats.Blackholed++
		return v, ob
	}
	if draw(rule.PDelay) {
		v.delay = rule.Delay
		n.stats.Delayed++
	}
	switch {
	case draw(rule.PReset):
		v.body = bodyReset
		n.stats.Resets++
	case draw(rule.PTruncate):
		v.body = bodyTruncate
		n.stats.Truncated++
	case draw(rule.PCorrupt):
		v.body = bodyCorrupt
		n.stats.Corrupted++
	}
	if v.body != bodyNone {
		// Land the fault early in the stream — inside any JSON body
		// bigger than a few tens of bytes — at a seed-determined
		// offset so reruns tear the same byte.
		v.cut = 1 + n.rng.Intn(31)
	}
	return v, ob
}

// FaultError is the error injected faults surface. It unwraps to
// ErrInjected (and, for deadline-bound kinds, to the context error)
// and implements net.Error so retry loops classify it like a real
// transport failure.
type FaultError struct {
	Kind     string
	Src, Dst string
	Op       int
	cause    error
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("netx: %s %s->%s (op %d): %v", e.Kind, e.Src, e.Dst, e.Op, ErrInjected)
}

// Unwrap exposes ErrInjected and, when the fault ended on a deadline,
// the context's error.
func (e *FaultError) Unwrap() []error {
	if e.cause != nil {
		return []error{ErrInjected, e.cause}
	}
	return []error{ErrInjected}
}

// Timeout implements net.Error: black holes and over-deadline delays
// are timeouts.
func (e *FaultError) Timeout() bool {
	return e.Kind == KindBlackhole || e.Kind == KindDelay
}

// Temporary implements net.Error: every injected fault may clear.
func (e *FaultError) Temporary() bool { return true }

// transport applies a Net's plan to one node's outbound requests.
type transport struct {
	n     *Net
	src   string
	inner http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *transport) RoundTrip(r *http.Request) (*http.Response, error) {
	v, observe := t.n.decide(t.src, r.URL.Host)
	if observe != nil {
		observe(Obs{Op: v.op, Src: t.src, Dst: r.URL.Host, Header: r.Header.Clone()})
	}
	fail := func(kind string, cause error) (*http.Response, error) {
		if r.Body != nil {
			r.Body.Close()
		}
		return nil, &FaultError{Kind: kind, Src: t.src, Dst: r.URL.Host, Op: v.op, cause: cause}
	}
	switch {
	case v.partitioned:
		return fail(KindPartition, nil)
	case v.refused:
		return fail(KindRefused, nil)
	}
	if v.delay > 0 {
		timer := time.NewTimer(v.delay)
		select {
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return fail(KindDelay, r.Context().Err())
		}
	}
	if v.blackhole {
		// Swallow the request and wait for the caller to give up. A
		// request without a deadline waits forever, exactly like the
		// real fault.
		if r.Body != nil {
			r.Body.Close()
		}
		<-r.Context().Done()
		return nil, &FaultError{Kind: KindBlackhole, Src: t.src, Dst: r.URL.Host, Op: v.op, cause: r.Context().Err()}
	}
	resp, err := t.inner.RoundTrip(r)
	if err != nil || resp == nil || resp.Body == nil || v.body == bodyNone {
		return resp, err
	}
	resp.Body = &faultBody{
		inner: resp.Body,
		mode:  v.body,
		cut:   v.cut,
		err:   &FaultError{Kind: KindReset, Src: t.src, Dst: r.URL.Host, Op: v.op},
	}
	// The delivered body will not match the advertised length; drop it
	// so readers fail on content, not transport accounting.
	if v.body != bodyCorrupt {
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// faultBody injects the drawn body fault at byte offset cut: reset
// returns a connection error mid-stream, truncate a clean early EOF,
// corrupt flips the byte at cut and streams the rest untouched.
type faultBody struct {
	inner     io.ReadCloser
	mode      int
	cut       int
	pos       int
	corrupted bool
	err       error
}

// Read implements io.Reader.
func (b *faultBody) Read(p []byte) (int, error) {
	switch b.mode {
	case bodyReset, bodyTruncate:
		if b.pos >= b.cut {
			return 0, b.fault()
		}
		if rem := b.cut - b.pos; len(p) > rem {
			p = p[:rem]
		}
		n, err := b.inner.Read(p)
		b.pos += n
		if err == nil && b.pos >= b.cut {
			err = b.fault()
		}
		return n, err
	case bodyCorrupt:
		n, err := b.inner.Read(p)
		if !b.corrupted && b.pos <= b.cut && b.cut < b.pos+n {
			p[b.cut-b.pos] ^= 0x80
			b.corrupted = true
		} else if !b.corrupted && n > 0 && err != nil {
			// Stream ended before the chosen offset: flip the last
			// byte so a corrupt verdict always corrupts.
			p[n-1] ^= 0x80
			b.corrupted = true
		}
		b.pos += n
		return n, err
	}
	return b.inner.Read(p)
}

// fault is the error ending a reset or truncate stream: a connection
// error for reset, a clean io.EOF for truncate.
func (b *faultBody) fault() error {
	if b.mode == bodyReset {
		return b.err
	}
	return io.EOF
}

// Close implements io.Closer.
func (b *faultBody) Close() error { return b.inner.Close() }

// RoundTripFunc adapts a function to http.RoundTripper — the shared
// home of the helper client tests used to redeclare per file.
type RoundTripFunc func(*http.Request) (*http.Response, error)

// RoundTrip implements http.RoundTripper.
func (f RoundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
