package netx

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// okBody is a canned JSON-ish payload comfortably longer than the
// body-fault cut range so mid-body faults always land mid-body.
const okBody = `{"result":"0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"}`

// echo is an inner transport returning okBody with a 200.
func echo() http.RoundTripper {
	return RoundTripFunc(func(r *http.Request) (*http.Response, error) {
		if r.Body != nil {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
		return &http.Response{
			StatusCode: http.StatusOK,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(strings.NewReader(okBody)),
			Request:    r,
		}, nil
	})
}

// get issues one GET to dst through t and returns the full body read.
func get(t *testing.T, rt http.RoundTripper, dst string) ([]byte, error) {
	t.Helper()
	req, err := http.NewRequest("GET", "http://"+dst+"/v1/predict", nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	resp, err := rt.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func TestRefuseUnwrapsInjected(t *testing.T) {
	n := New(Plan{Seed: 1, Default: Rule{PRefuse: 1}})
	rt := n.Transport("a:1", echo())
	_, err := get(t, rt, "b:2")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != KindRefused {
		t.Fatalf("want FaultError kind %q, got %#v", KindRefused, err)
	}
	if !fe.Temporary() || fe.Timeout() {
		t.Fatalf("refused: Temporary()=%v Timeout()=%v, want true/false", fe.Temporary(), fe.Timeout())
	}
	if s := n.Stats(); s.Refused != 1 || s.Ops != 1 {
		t.Fatalf("stats = %+v, want 1 op 1 refused", s)
	}
}

func TestPerPairRuleOverridesDefault(t *testing.T) {
	n := New(Plan{
		Seed:    7,
		Default: Rule{PRefuse: 1},
		Pairs:   map[string]Rule{"a:1>b:2": {}}, // this direction is clean
	})
	if _, err := get(t, n.Transport("a:1", echo()), "b:2"); err != nil {
		t.Fatalf("pair-exempt request failed: %v", err)
	}
	if _, err := get(t, n.Transport("b:2", echo()), "a:1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("reverse direction should hit the default rule, got %v", err)
	}
}

func TestPartitionWindow(t *testing.T) {
	n := New(Plan{Seed: 3, Partitions: []Partition{{
		A: []string{"a:1"}, B: []string{"b:2", "c:3"}, FromOp: 2, ToOp: 3,
	}}})
	a := n.Transport("a:1", echo())
	b := n.Transport("b:2", echo())
	if _, err := get(t, a, "b:2"); err != nil { // op 1: before the window
		t.Fatalf("op 1 should pass: %v", err)
	}
	if _, err := get(t, a, "b:2"); !errors.Is(err, ErrInjected) { // op 2
		t.Fatalf("op 2 should be severed, got %v", err)
	}
	if _, err := get(t, b, "a:1"); !errors.Is(err, ErrInjected) { // op 3: other direction
		t.Fatalf("op 3 reverse direction should be severed, got %v", err)
	}
	if _, err := get(t, b, "c:3"); err != nil { // op 4: window closed
		t.Fatalf("op 4 is past the window: %v", err)
	}
	if s := n.Stats(); s.Partitioned != 2 {
		t.Fatalf("stats = %+v, want 2 partitioned", s)
	}
}

func TestPartitionDoesNotSeverSameSide(t *testing.T) {
	n := New(Plan{Partitions: []Partition{{A: []string{"a:1"}, B: []string{"b:2", "c:3"}}}})
	if _, err := get(t, n.Transport("b:2", echo()), "c:3"); err != nil {
		t.Fatalf("same-side traffic must pass: %v", err)
	}
}

func TestBlackholeHangsUntilDeadline(t *testing.T) {
	n := New(Plan{Seed: 5, Default: Rule{PBlackhole: 1}})
	rt := n.Transport("a:1", echo())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://b:2/v1/predict", nil)
	_, err := rt.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("blackhole must also unwrap ErrInjected, got %v", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || !fe.Timeout() {
		t.Fatalf("blackhole must be a net.Error timeout, got %#v", err)
	}
}

func TestDelayCutShortByContext(t *testing.T) {
	// A one-hour delay against a 30ms deadline: the test finishing at
	// all proves the sleep honours the request context.
	n := New(Plan{Seed: 9, Default: Rule{PDelay: 1, Delay: time.Hour}})
	rt := n.Transport("a:1", echo())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://b:2/v1/predict", nil)
	_, err := rt.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want DeadlineExceeded+ErrInjected, got %v", err)
	}
}

func TestResetMidBody(t *testing.T) {
	n := New(Plan{Seed: 11, Default: Rule{PReset: 1}})
	body, err := get(t, n.Transport("a:1", echo()), "b:2")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want mid-body ErrInjected, got %v", err)
	}
	if len(body) == 0 || len(body) >= len(okBody) {
		t.Fatalf("reset must deliver a strict non-empty prefix, got %d of %d bytes", len(body), len(okBody))
	}
	if !strings.HasPrefix(okBody, string(body)) {
		t.Fatalf("delivered bytes are not a prefix of the real body: %q", body)
	}
}

func TestTruncateIsCleanEOF(t *testing.T) {
	n := New(Plan{Seed: 13, Default: Rule{PTruncate: 1}})
	body, err := get(t, n.Transport("a:1", echo()), "b:2")
	if err != nil {
		t.Fatalf("truncate must end with a clean EOF, got %v", err)
	}
	if len(body) == 0 || len(body) >= len(okBody) {
		t.Fatalf("truncate must deliver a strict non-empty prefix, got %d of %d bytes", len(body), len(okBody))
	}
	if !strings.HasPrefix(okBody, string(body)) {
		t.Fatalf("delivered bytes are not a prefix of the real body: %q", body)
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	n := New(Plan{Seed: 17, Default: Rule{PCorrupt: 1}})
	body, err := get(t, n.Transport("a:1", echo()), "b:2")
	if err != nil {
		t.Fatalf("corrupt must deliver the full (damaged) body: %v", err)
	}
	if len(body) != len(okBody) {
		t.Fatalf("corrupt must preserve length: got %d want %d", len(body), len(okBody))
	}
	diff := 0
	for i := range body {
		if body[i] != okBody[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("want exactly one flipped byte, got %d", diff)
	}
}

func TestHealStopsInjection(t *testing.T) {
	n := New(Plan{Seed: 19, Default: Rule{PRefuse: 1},
		Partitions: []Partition{{A: []string{"a:1"}, B: []string{"b:2"}}}})
	rt := n.Transport("a:1", echo())
	if _, err := get(t, rt, "b:2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("pre-heal request should fail, got %v", err)
	}
	n.Heal()
	if body, err := get(t, rt, "b:2"); err != nil || !bytes.Equal(body, []byte(okBody)) {
		t.Fatalf("post-heal request must pass untouched: %v %q", err, body)
	}
	n.SetPartitions([]Partition{{A: []string{"a:1"}, B: []string{"b:2"}}})
	if _, err := get(t, rt, "b:2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("SetPartitions must re-arm the fabric, got %v", err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Stats {
		n := New(Plan{Seed: 23, Default: Rule{
			PRefuse: 0.2, PBlackhole: 0, PDelay: 0.2, Delay: time.Microsecond,
			PReset: 0.2, PTruncate: 0.2, PCorrupt: 0.2,
		}})
		rt := n.Transport("a:1", echo())
		for i := 0; i < 200; i++ {
			body, err := get(t, rt, "b:2")
			_ = body
			_ = err
		}
		return n.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same plan, same ops, different faults:\n%+v\n%+v", s1, s2)
	}
	if s1.Refused == 0 || s1.Resets == 0 || s1.Truncated == 0 || s1.Corrupted == 0 {
		t.Fatalf("plan should exercise every kind over 200 ops: %+v", s1)
	}
}

func TestObserverSeesEveryDecision(t *testing.T) {
	n := New(Plan{Seed: 29, Default: Rule{PRefuse: 1}})
	var mu sync.Mutex
	var seen []Obs
	n.Observe(func(o Obs) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, o)
	})
	rt := n.Transport("a:1", echo())
	req, _ := http.NewRequest("GET", "http://b:2/v1/jobs/x", nil)
	req.Header.Set("X-Starperf-Deadline", "1000")
	rt.RoundTrip(req)
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 {
		t.Fatalf("want 1 observation, got %d", len(seen))
	}
	o := seen[0]
	if o.Src != "a:1" || o.Dst != "b:2" || o.Op != 1 {
		t.Fatalf("observation = %+v", o)
	}
	if o.Header.Get("X-Starperf-Deadline") != "1000" {
		t.Fatalf("observer must see cloned request headers, got %v", o.Header)
	}
}

func TestRoundTripFuncAdapts(t *testing.T) {
	var called bool
	rt := RoundTripFunc(func(r *http.Request) (*http.Response, error) {
		called = true
		return &http.Response{StatusCode: 204, Body: http.NoBody}, nil
	})
	resp, err := rt.RoundTrip(&http.Request{})
	if err != nil || !called || resp.StatusCode != 204 {
		t.Fatalf("RoundTripFunc: called=%v resp=%v err=%v", called, resp, err)
	}
}
