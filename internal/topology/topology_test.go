package topology

import (
	"testing"
	"testing/quick"
)

func TestRequiredNegativeHopsBasics(t *testing.T) {
	cases := []struct {
		color, d, want int
	}{
		{0, 0, 0}, {1, 0, 0},
		{0, 1, 0}, {1, 1, 1},
		{0, 2, 1}, {1, 2, 1},
		{0, 5, 2}, {1, 5, 3},
		{0, 6, 3}, {1, 6, 3},
	}
	for _, c := range cases {
		if got := RequiredNegativeHops(c.color, c.d); got != c.want {
			t.Errorf("RequiredNegativeHops(%d,%d) = %d, want %d", c.color, c.d, got, c.want)
		}
	}
}

// TestRequiredNegativeHopsRecurrence: taking one hop from a colour-c
// node reduces the requirement by 1 exactly when the hop is negative
// (c = 1), and the remaining requirement is evaluated at the opposite
// colour.
func TestRequiredNegativeHopsRecurrence(t *testing.T) {
	f := func(cRaw, dRaw int) bool {
		c := ((cRaw % 2) + 2) % 2
		d := ((dRaw % 40) + 40) % 40
		if d == 0 {
			return RequiredNegativeHops(c, 0) == 0
		}
		r := RequiredNegativeHops(c, d)
		rNext := RequiredNegativeHops(1-c, d-1)
		if c == 1 {
			return r == rNext+1
		}
		return r == rNext
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRequiredNegativeHopsBounds(t *testing.T) {
	for c := 0; c <= 1; c++ {
		for d := 0; d <= 30; d++ {
			r := RequiredNegativeHops(c, d)
			if r < 0 || r > (d+1)/2 {
				t.Fatalf("R(%d,%d) = %d out of bounds", c, d, r)
			}
		}
	}
}

func TestMaxNegAndEscapeVCs(t *testing.T) {
	if MaxNegativeHops(6) != 3 || MaxNegativeHops(7) != 4 || MaxNegativeHops(0) != 0 {
		t.Fatal("MaxNegativeHops broken")
	}
	for h := 0; h <= 20; h++ {
		if MinEscapeVCs(h) != MaxNegativeHops(h)+1 {
			t.Fatalf("MinEscapeVCs(%d) inconsistent", h)
		}
		// every colour/distance combination within the diameter must fit
		for c := 0; c <= 1; c++ {
			for d := 0; d <= h; d++ {
				if RequiredNegativeHops(c, d) > MinEscapeVCs(h)-1 {
					t.Fatalf("requirement exceeds escape levels at h=%d c=%d d=%d", h, c, d)
				}
			}
		}
	}
}

type fullTop struct{}

func (fullTop) Name() string                           { return "full" }
func (fullTop) N() int                                 { return 2 }
func (fullTop) Degree() int                            { return 1 }
func (fullTop) Neighbor(node, dim int) int             { return 1 - node }
func (fullTop) Distance(a, b int) int                  { return abs(a - b) }
func (fullTop) ProfitableDims(c, d int, b []int) []int { return b }
func (fullTop) Color(node int) int                     { return node & 1 }
func (fullTop) Diameter() int                          { return 1 }
func (fullTop) AvgDistance() float64                   { return 1 }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

type partialTop struct{ fullTop }

func (partialTop) HasChannel(node, dim int) bool { return node == 0 }

func TestHasChannelHelper(t *testing.T) {
	if !HasChannel(fullTop{}, 1, 0) {
		t.Fatal("non-Partial topology must have every channel")
	}
	if !HasChannel(partialTop{}, 0, 0) || HasChannel(partialTop{}, 1, 0) {
		t.Fatal("Partial topology not consulted")
	}
}
