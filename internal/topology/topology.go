// Package topology defines the abstract interconnection-network
// interface shared by the routing algorithms, the flit-level
// simulator and the analytical model. A Topology is a finite,
// node-symmetric, bipartite direct network whose nodes are indexed
// 0..N()-1 and whose links are grouped into Degree() dimensions per
// node.
package topology

// Topology is the contract the simulator, routing layer and model
// rely on. Implementations must be safe for concurrent read use after
// construction (all methods are pure queries).
type Topology interface {
	// Name identifies the instance, e.g. "S5" or "Q7".
	Name() string

	// N returns the number of nodes.
	N() int

	// Degree returns the number of outgoing physical channels per
	// node (one per dimension).
	Degree() int

	// Neighbor returns the node reached from node along dimension
	// dim, 0 ≤ dim < Degree().
	Neighbor(node, dim int) int

	// Distance returns the length of a shortest path from a to b.
	Distance(a, b int) int

	// ProfitableDims appends to buf the dimensions at cur that lie on
	// some minimal path towards dst and returns the extended slice.
	// It returns buf unchanged when cur == dst. Passing a reusable
	// buffer avoids per-hop allocation in the simulator's hot loop.
	ProfitableDims(cur, dst int, buf []int) []int

	// Color returns the bipartition colour (0 or 1) of a node. Every
	// link of a bipartite network joins nodes of opposite colours;
	// negative-hop routing schemes define a hop from colour 1 to
	// colour 0 as negative.
	Color(node int) int

	// Diameter returns the maximum pairwise distance.
	Diameter() int

	// AvgDistance returns the mean distance from a fixed node to all
	// other nodes (equivalently, over ordered distinct pairs, by node
	// symmetry).
	AvgDistance() float64
}

// Partial is implemented by topologies in which not every node has a
// physical channel in every dimension (meshes: edge nodes lack
// outward links). Neighbor returns -1 on a missing channel; minimal
// routing never selects one, but statistics collectors must skip
// them. Fully symmetric topologies simply do not implement Partial.
type Partial interface {
	// HasChannel reports whether node has an outgoing physical
	// channel in dimension dim.
	HasChannel(node, dim int) bool
}

// HasChannel reports whether (node, dim) is a real channel of top:
// true unless top is Partial and says otherwise.
func HasChannel(top Topology, node, dim int) bool {
	if p, ok := top.(Partial); ok {
		return p.HasChannel(node, dim)
	}
	return true
}

// RequiredNegativeHops returns the number of negative hops a message
// must still take, given the colour of the node it currently occupies
// and its remaining distance d. In a bipartite network colours
// alternate along any path, so the count is exact, not a bound: a
// message at a colour-1 node takes negative hops on its 1st, 3rd, …
// remaining hops (⌈d/2⌉ of them); at a colour-0 node on its 2nd,
// 4th, … (⌊d/2⌋).
func RequiredNegativeHops(color, d int) int {
	if color == 1 {
		return (d + 1) / 2
	}
	return d / 2
}

// MaxNegativeHops returns the worst-case negative-hop requirement over
// all source/destination pairs of a network with the given diameter:
// ⌈H/2⌉ (a colour-1 source at full diameter).
func MaxNegativeHops(diameter int) int { return (diameter + 1) / 2 }

// MinEscapeVCs returns the minimum number of negative-hop virtual
// channel levels (class-b VCs) a deadlock-free Nbc scheme needs:
// one level per possible negative-hop count, 0..MaxNegativeHops.
func MinEscapeVCs(diameter int) int { return MaxNegativeHops(diameter) + 1 }
