package stargraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"starperf/internal/perm"
	"starperf/internal/topology"
)

// bfsFromIdentity computes exact distances from node 0 by BFS, used
// as ground truth against the closed-form formula.
func bfsFromIdentity(g *Graph) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for dim := 0; dim < g.Degree(); dim++ {
			w := g.Neighbor(v, dim)
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func TestDistanceFormulaMatchesBFS(t *testing.T) {
	for n := 2; n <= 7; n++ {
		g := MustNew(n)
		bfs := bfsFromIdentity(g)
		for v := 0; v < g.N(); v++ {
			if bfs[v] != g.DistanceToID(v) {
				t.Fatalf("S%d node %v: formula %d, BFS %d",
					n, g.Perm(v), g.DistanceToID(v), bfs[v])
			}
		}
	}
}

func TestDiameter(t *testing.T) {
	want := map[int]int{2: 1, 3: 3, 4: 4, 5: 6, 6: 7, 7: 9}
	for n, w := range want {
		if got := Diameter(n); got != w {
			t.Errorf("Diameter(%d) = %d, want %d", n, got, w)
		}
		g := MustNew(n)
		max := 0
		for v := 0; v < g.N(); v++ {
			if d := g.DistanceToID(v); d > max {
				max = d
			}
		}
		if max != w {
			t.Errorf("S%d observed max distance %d, want diameter %d", n, max, w)
		}
	}
}

func TestDistanceSymmetryAndTriangle(t *testing.T) {
	g := MustNew(5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := rng.Intn(g.N()), rng.Intn(g.N()), rng.Intn(g.N())
		dab, dba := g.Distance(a, b), g.Distance(b, a)
		if dab != dba {
			return false
		}
		if (a == b) != (dab == 0) {
			return false
		}
		return g.Distance(a, c) <= dab+g.Distance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacencyInvolution(t *testing.T) {
	g := MustNew(5)
	for v := 0; v < g.N(); v++ {
		for dim := 0; dim < g.Degree(); dim++ {
			w := g.Neighbor(v, dim)
			if w == v {
				t.Fatalf("self loop at %d dim %d", v, dim)
			}
			if g.Neighbor(w, dim) != v {
				t.Fatalf("generator not involutive: %d --%d--> %d --%d--> %d",
					v, dim, w, dim, g.Neighbor(w, dim))
			}
			if g.Distance(v, w) != 1 {
				t.Fatalf("adjacent nodes at distance %d", g.Distance(v, w))
			}
		}
	}
}

func TestBipartiteColoring(t *testing.T) {
	g := MustNew(6)
	for v := 0; v < g.N(); v++ {
		for dim := 0; dim < g.Degree(); dim++ {
			if g.Color(v) == g.Color(g.Neighbor(v, dim)) {
				t.Fatalf("edge within colour class at node %d dim %d", v, dim)
			}
		}
	}
}

// TestProfitableMovesExact verifies the closed-form profitable-move
// characterisation exhaustively: a dimension is profitable iff it
// decreases distance by exactly 1, and unprofitable dimensions
// increase it by exactly 1 (the star graph is bipartite so distance
// changes by ±1 on every hop).
func TestProfitableMovesExact(t *testing.T) {
	for n := 2; n <= 6; n++ {
		g := MustNew(n)
		buf := make([]int, 0, n)
		for v := 0; v < g.N(); v++ {
			d := g.DistanceToID(v)
			buf = g.ProfitableDims(v, 0, buf[:0])
			isProf := make(map[int]bool, len(buf))
			for _, dim := range buf {
				isProf[dim] = true
			}
			for dim := 0; dim < g.Degree(); dim++ {
				dn := g.DistanceToID(g.Neighbor(v, dim))
				switch {
				case isProf[dim] && dn != d-1:
					t.Fatalf("S%d node %v dim %d claimed profitable but Δd=%d",
						n, g.Perm(v), dim, dn-d)
				case !isProf[dim] && dn != d+1:
					t.Fatalf("S%d node %v dim %d claimed unprofitable but Δd=%d",
						n, g.Perm(v), dim, dn-d)
				}
			}
		}
	}
}

// TestProfitableMovesArbitraryDst spot-checks profitability with
// non-identity destinations (exercises the relabelling path).
func TestProfitableMovesArbitraryDst(t *testing.T) {
	g := MustNew(5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v, dst := rng.Intn(g.N()), rng.Intn(g.N())
		if v == dst {
			return len(g.ProfitableDims(v, dst, nil)) == 0
		}
		d := g.Distance(v, dst)
		dims := g.ProfitableDims(v, dst, nil)
		if len(dims) == 0 {
			return false // always at least one minimal move
		}
		for _, dim := range dims {
			if g.Distance(g.Neighbor(v, dim), dst) != d-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestProfitableCountFormula(t *testing.T) {
	// f = m when the front symbol is home; f = 1 + (m − L) otherwise,
	// where L is the length of the cycle through position 1.
	g := MustNew(6)
	for v := 1; v < g.N(); v++ {
		info := g.Perm(v).Cycles()
		want := info.Displaced
		if !info.FirstHome {
			want = 1 + info.Displaced - info.FirstCycleLen
		}
		if got := len(g.ProfitableDims(v, 0, nil)); got != want {
			t.Fatalf("node %v: %d profitable dims, formula says %d",
				g.Perm(v), got, want)
		}
	}
}

func TestDistanceDistributionMatchesEnumeration(t *testing.T) {
	for n := 2; n <= 7; n++ {
		g := MustNew(n)
		got := DistanceDistribution(n)
		want := make([]uint64, Diameter(n)+1)
		for v := 0; v < g.N(); v++ {
			want[g.DistanceToID(v)]++
		}
		if len(got) != len(want) {
			t.Fatalf("S%d distribution length %d, want %d", n, len(got), len(want))
		}
		for h := range want {
			if got[h] != want[h] {
				t.Fatalf("S%d N(%d) = %d, want %d", n, h, got[h], want[h])
			}
		}
	}
}

func TestDistanceDistributionSumsToFactorial(t *testing.T) {
	for n := 2; n <= 12; n++ {
		var sum uint64
		for _, c := range DistanceDistribution(n) {
			sum += c
		}
		if sum != perm.Factorial(n) {
			t.Fatalf("S%d distribution sums to %d, want %d", n, sum, perm.Factorial(n))
		}
	}
}

func TestAvgDistanceKnownValues(t *testing.T) {
	// S5: brute-force over the 120-node graph.
	g := MustNew(5)
	var sum float64
	for v := 1; v < g.N(); v++ {
		sum += float64(g.DistanceToID(v))
	}
	brute := sum / float64(g.N()-1)
	if got := g.AvgDistance(); got < brute-1e-12 || got > brute+1e-12 {
		t.Fatalf("S5 AvgDistance %v, brute force %v", got, brute)
	}
	// sanity: average distance is below the diameter and above half of it
	for n := 3; n <= 12; n++ {
		a := AvgDistanceN(n)
		if a <= float64(Diameter(n))/2 || a >= float64(Diameter(n)) {
			t.Errorf("S%d AvgDistance %v outside (H/2, H), H=%d", n, a, Diameter(n))
		}
	}
}

func TestNegativeHopBounds(t *testing.T) {
	// Along any minimal path the number of negative hops equals the
	// colour-alternation prediction; verify by walking random minimal
	// paths in S5.
	g := MustNew(5)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		src := rng.Intn(g.N())
		dst := rng.Intn(g.N())
		want := topology.RequiredNegativeHops(g.Color(src), g.Distance(src, dst))
		cur, neg := src, 0
		for cur != dst {
			dims := g.ProfitableDims(cur, dst, nil)
			next := g.Neighbor(cur, dims[rng.Intn(len(dims))])
			if g.Color(cur) == 1 && g.Color(next) == 0 {
				neg++
			}
			cur = next
		}
		if neg != want {
			t.Fatalf("src %d dst %d: %d negative hops, predicted %d",
				src, dst, neg, want)
		}
	}
}

func TestMinEscapeVCs(t *testing.T) {
	if got := topology.MinEscapeVCs(Diameter(5)); got != 4 {
		t.Fatalf("S5 MinEscapeVCs = %d, want 4", got)
	}
	if got := topology.MinEscapeVCs(Diameter(4)); got != 3 {
		t.Fatalf("S4 MinEscapeVCs = %d, want 3", got)
	}
}

func TestNewRejectsBadN(t *testing.T) {
	for _, n := range []int{0, 1, 11, -3} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) succeeded, want error", n)
		}
	}
}

func TestTopologyInterfaceCompliance(t *testing.T) {
	var _ topology.Topology = MustNew(4)
}

func TestProfitableOfRelative(t *testing.T) {
	if dims := ProfitableOfRelative(perm.Identity(5), nil); len(dims) != 0 {
		t.Fatalf("identity has %d profitable dims", len(dims))
	}
	q := perm.MustNew([]int{2, 1, 3, 4, 5})
	dims := ProfitableOfRelative(q, nil)
	if len(dims) != 1 || dims[0] != 0 {
		t.Fatalf("swap(1,2): dims %v, want [0]", dims)
	}
}

func BenchmarkProfitableDims(b *testing.B) {
	g := MustNew(7)
	buf := make([]int, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = g.ProfitableDims(i%g.N(), 0, buf[:0])
	}
}

func BenchmarkDistance(b *testing.B) {
	g := MustNew(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Distance(i%g.N(), (i*2654435761)%g.N())
	}
}

func BenchmarkNewS7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = MustNew(7)
	}
}
