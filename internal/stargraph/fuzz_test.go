package stargraph

import (
	"sync"
	"testing"
)

// fuzzGraphs caches one Graph per n so fuzz executions do not rebuild
// the n! node tables; Graph is immutable after construction and safe
// for the fuzzer's parallel workers.
var fuzzGraphs sync.Map // int -> *Graph

func fuzzGraph(n int) *Graph {
	if g, ok := fuzzGraphs.Load(n); ok {
		return g.(*Graph)
	}
	g, _ := fuzzGraphs.LoadOrStore(n, MustNew(n))
	return g.(*Graph)
}

// bfsDistance computes the shortest-path distance between two nodes
// by breadth-first search over the adjacency tables — the oracle the
// closed-form cycle-structure formula must agree with.
func bfsDistance(g *Graph, from, to int) int {
	if from == to {
		return 0
	}
	dist := make([]int16, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[from] = 0
	queue := []int{from}
	deg := g.Degree()
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for dim := 0; dim < deg; dim++ {
			next := g.Neighbor(cur, dim)
			if dist[next] >= 0 {
				continue
			}
			dist[next] = dist[cur] + 1
			if next == to {
				return int(dist[next])
			}
			queue = append(queue, next)
		}
	}
	return -1 // unreachable: S_n is connected
}

// FuzzDistance cross-checks the closed-form cycle-structure distance
// (DistanceToIdentity, the basis of the paper's eq. 2 averages)
// against a BFS oracle on arbitrary node pairs of S_2..S_6, together
// with the metric properties the routing layer relies on.
func FuzzDistance(f *testing.F) {
	f.Add(uint8(4), uint64(0), uint64(1))
	f.Add(uint8(5), uint64(17), uint64(101))
	f.Add(uint8(6), uint64(719), uint64(0))
	f.Add(uint8(2), uint64(1), uint64(1))
	f.Add(uint8(3), uint64(5), uint64(2))
	f.Fuzz(func(t *testing.T, n uint8, a, b uint64) {
		nn := 2 + int(n%5) // S_2 .. S_6 (720 nodes max: BFS stays fast)
		g := fuzzGraph(nn)
		na := int(a % uint64(g.N()))
		nb := int(b % uint64(g.N()))

		closed := g.Distance(na, nb)
		oracle := bfsDistance(g, na, nb)
		if closed != oracle {
			t.Fatalf("S_%d: Distance(%d,%d) = %d, BFS says %d", nn, na, nb, closed, oracle)
		}
		if sym := g.Distance(nb, na); sym != closed {
			t.Fatalf("S_%d: asymmetric distance d(%d,%d)=%d but d(%d,%d)=%d",
				nn, na, nb, closed, nb, na, sym)
		}
		if closed < 0 || closed > g.Diameter() {
			t.Fatalf("S_%d: distance %d outside [0, diameter %d]", nn, closed, g.Diameter())
		}
		if (closed == 0) != (na == nb) {
			t.Fatalf("S_%d: zero distance for distinct nodes %d, %d", nn, na, nb)
		}
		// Distance to the identity must match the precomputed table.
		if d0 := g.Distance(na, 0); d0 != g.DistanceToID(na) {
			t.Fatalf("S_%d: Distance(%d,0)=%d but DistanceToID=%d",
				nn, na, d0, g.DistanceToID(na))
		}
	})
}
