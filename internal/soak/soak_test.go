package soak

// The randomized soak drill (PR 12): a real 3-node in-process ring —
// journals on fault-injecting disks, peer traffic on a fault-injecting
// fabric with a timed partition window — takes hundreds of seeded
// mixed operations, and the invariant checker must come back clean:
// nothing acknowledged is lost, every verified result copy is
// byte-identical, breakers come back after the heal, forwarded
// deadlines never grow. The report is written to $SOAK_REPORT when CI
// wants the artifact.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"starperf/internal/cache"
	"starperf/internal/cluster"
	"starperf/internal/fsx"
	"starperf/internal/journal"
	"starperf/internal/netx"
	"starperf/internal/server"
)

// soakSeed parameterises the whole drill: the op generator, the
// network fault schedule and each node's disk fault schedule all
// derive from it.
const soakSeed = 42

// newSoakRing starts three servers whose peer traffic crosses fabric
// and whose journals live on fsx.Faulty disks seeded from seed.
func newSoakRing(t *testing.T, fabric *netx.Net, seed uint64) []string {
	t.Helper()
	const n = 3
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	for i, addr := range addrs {
		ring, err := cluster.New(cluster.Config{Self: addr, Peers: addrs})
		if err != nil {
			t.Fatal(err)
		}
		// A mildly unreliable disk: torn and failing writes the journal
		// must absorb, plus a rare ENOSPC so the read-only degradation
		// path fires mid-soak. Submissions it refuses are typed, never
		// acknowledged — so they cannot trip the lost-job invariant.
		fa := fsx.NewFaulty(fsx.OS{}, fsx.FaultPlan{
			Seed:        seed + uint64(i),
			PWrite:      0.02,
			PSync:       0.02,
			PNoSpace:    0.01,
			ShortWrites: true,
		})
		j, _, err := journal.Open(journal.Options{Dir: t.TempDir(), FS: fa})
		if err != nil {
			t.Fatal(err)
		}
		s, err := server.New(server.Config{
			Workers:     2,
			Cache:       cache.Config{Dir: t.TempDir()},
			Ring:        ring,
			Journal:     j,
			PeerHTTP:    fabric.Client(addr, nil),
			PeerBreaker: server.BreakerConfig{Cooldown: 50 * time.Millisecond},
			ProbeEvery:  -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := &httptest.Server{Listener: listeners[i], Config: &http.Server{Handler: s.Handler()}}
		ts.Start()
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = s.Close(ctx)
			_ = j.Close()
		})
	}
	return addrs
}

func TestSoakInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("soak drill takes seconds; skipped in -short")
	}
	// Everything misbehaves a little, and ops 20..120 add a partition
	// window cutting node 0 off from the rest — it expires on its own,
	// and Run heals whatever probabilistic faults remain before
	// draining.
	plan := netx.Plan{
		Seed: soakSeed,
		Default: netx.Rule{
			PRefuse:   0.05,
			PDelay:    0.05,
			Delay:     2 * time.Millisecond,
			PReset:    0.04,
			PTruncate: 0.04,
			PCorrupt:  0.04,
		},
	}
	fabric := netx.New(plan)
	addrs := newSoakRing(t, fabric, soakSeed)
	fabric.SetPartitions([]netx.Partition{{A: addrs[:1], B: addrs[1:], FromOp: 20, ToOp: 120}})

	// The driver's own requests cross the fabric too, so client-side
	// faults (refusals, torn bodies, corruption) hit the generated ops
	// directly and the checksum discipline is exercised end to end.
	report := Run(Config{Seed: soakSeed, Ops: 220}, addrs, fabric.Client("driver", nil), fabric)

	if path := os.Getenv("SOAK_REPORT"); path != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if len(report.Violations) != 0 {
		t.Fatalf("soak violations:\n%v\nreport: %+v", report.Violations, report)
	}
	if report.Ops < 200 {
		t.Fatalf("ops = %d, want >= 200", report.Ops)
	}
	if report.Acked == 0 {
		t.Fatal("soak acknowledged no jobs — the async path was never exercised")
	}
	if report.Faults.Partitioned == 0 {
		t.Fatal("no request was severed — the partition window never fired")
	}
	t.Logf("soak: ops=%d acked=%d errors=%d corrupt_rejected=%d faults=%+v",
		report.Ops, report.Acked, report.Errors, report.CorruptRejected, report.Faults)
}

// TestSoakCleanNetworkBaseline: the same drill with no faults at all
// must be violation-free with near-zero weather — a canary that the
// harness itself is not the source of noise.
func TestSoakCleanNetworkBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak drill takes seconds; skipped in -short")
	}
	fabric := netx.New(netx.Plan{Seed: soakSeed})
	addrs := newSoakRing(t, fabric, soakSeed+100)
	report := Run(Config{Seed: soakSeed, Ops: 60}, addrs, fabric.Client("driver", nil), fabric)
	if len(report.Violations) != 0 {
		t.Fatalf("baseline violations: %v", report.Violations)
	}
	if report.Acked == 0 {
		t.Fatal("baseline acknowledged no jobs")
	}
}
