// Package soak is the randomized chaos harness (PR 12): a seeded
// generator drives hundreds of mixed predict/bounds/submit/batch/poll
// operations over raw HTTP against a cluster whose network (netx) and
// disks (fsx) are injecting faults, and an invariant checker asserts
// the properties the serving stack promises under any schedule:
//
//   - no acknowledged-then-lost job: every submission the cluster
//     answered with a job id is servable, done, after faults clear;
//   - byte-identity: every verified copy of a result — any node, any
//     time — is the same bytes;
//   - breaker liveness: no peer breaker stays pinned open once the
//     network heals and traffic flows;
//   - deadline monotonicity: a forwarded request never advertises
//     more deadline budget than the caller supplied.
//
// The package is deliberately pure plumbing — seeded math/rand, raw
// net/http, no wall-clock reads — so it sits inside the repo's
// determinism and clock-seam lint scopes and the same binary-driving
// code serves in-process tests and the CI smoke job. Servers are
// constructed by the caller (the test, the script); Run only drives
// and checks.
package soak

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"starperf/internal/netx"
)

// Canonical X-Starperf-* header names the driver speaks (mirroring
// internal/server/headers.go; the cross-package header audit covers
// this file).
const (
	deadlineHeader  = "X-Starperf-Deadline"
	forwardedHeader = "X-Starperf-Forwarded"
	resultSumHeader = "X-Starperf-Result-Sum"
)

// Config parameterises one soak run.
type Config struct {
	// Seed fully determines the generated operation sequence.
	Seed uint64
	// Ops is how many operations to drive (default 200).
	Ops int
	// Deadline is the per-request patience: the context budget and
	// the X-Starperf-Deadline header on every driven request
	// (default 2s). The monotonicity invariant checks forwarded
	// requests against it.
	Deadline time.Duration
	// DrainAttempts bounds the per-job post-heal polling (default
	// 500 attempts at 10ms — the drain phase is what proves "no
	// acknowledged job was lost", so it waits out queues).
	DrainAttempts int
}

func (c Config) withDefaults() Config {
	if c.Ops <= 0 {
		c.Ops = 200
	}
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Second
	}
	if c.DrainAttempts <= 0 {
		c.DrainAttempts = 500
	}
	return c
}

// Report is the invariant checker's verdict, JSON-serialisable so CI
// can archive it.
type Report struct {
	Seed uint64 `json:"seed"`
	Ops  int    `json:"ops"`

	Predicts int `json:"predicts"`
	Bounds   int `json:"bounds"`
	Submits  int `json:"submits"`
	Batches  int `json:"batches"`
	Polls    int `json:"polls"`

	// Acked counts distinct job ids the cluster acknowledged.
	Acked int `json:"acked"`
	// Errors counts tolerated failures while faults were firing —
	// refusals, resets, timeouts. They are the weather, not
	// violations.
	Errors int `json:"errors"`
	// CorruptRejected counts response bodies the driver discarded on
	// checksum mismatch — corruption detected, never trusted.
	CorruptRejected int `json:"corrupt_rejected"`

	// Faults snapshots the fabric's injection counters.
	Faults netx.Stats `json:"faults"`
	// Violations is empty on a passing run.
	Violations []string `json:"violations"`
}

// harness is one run's mutable state.
type harness struct {
	cfg     Config
	targets []string
	httpc   *http.Client
	rng     *rand.Rand

	mu         sync.Mutex // guards violations (the netx observer is concurrent)
	violations []string

	acked     []string          // ids in acknowledgement order
	ackedSet  map[string]bool   // membership for acked
	canonical map[string][]byte // id -> first verified result bytes
	report    Report
}

func (h *harness) violate(format string, args ...any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.violations = append(h.violations, fmt.Sprintf(format, args...))
}

// Run drives cfg.Ops generated operations against targets through
// httpc, then heals fabric, drains every acknowledged job and checks
// the invariants. fabric may be nil (a clean network; the partition
// and corruption invariants then check vacuously).
func Run(cfg Config, targets []string, httpc *http.Client, fabric *netx.Net) Report {
	cfg = cfg.withDefaults()
	h := &harness{
		cfg:       cfg,
		targets:   targets,
		httpc:     httpc,
		rng:       rand.New(rand.NewSource(int64(cfg.Seed))),
		ackedSet:  make(map[string]bool),
		canonical: make(map[string][]byte),
	}
	h.report.Seed = cfg.Seed

	if fabric != nil {
		// Deadline monotonicity: every forwarded peer request must
		// advertise at most the budget the original caller supplied —
		// a hop that inflates its deadline defeats admission control
		// downstream.
		fabric.Observe(func(o netx.Obs) {
			if o.Header.Get(forwardedHeader) == "" {
				return
			}
			v := o.Header.Get(deadlineHeader)
			if v == "" {
				return
			}
			d, err := time.ParseDuration(v)
			if err != nil {
				h.violate("op %d %s->%s: unparseable forwarded deadline %q", o.Op, o.Src, o.Dst, v)
				return
			}
			if d > cfg.Deadline {
				h.violate("op %d %s->%s: forwarded deadline %v exceeds caller budget %v", o.Op, o.Src, o.Dst, d, cfg.Deadline)
			}
		})
		defer fabric.Observe(nil)
	}

	for i := 0; i < cfg.Ops; i++ {
		h.step()
	}
	h.report.Ops = cfg.Ops

	if fabric != nil {
		fabric.Heal()
	}
	h.drain()
	h.checkBreakers()

	if fabric != nil {
		h.report.Faults = fabric.Stats()
	}
	h.mu.Lock()
	h.report.Violations = append([]string(nil), h.violations...)
	h.mu.Unlock()
	h.report.Acked = len(h.acked)
	return h.report
}

// step drives one generated operation.
func (h *harness) step() {
	target := h.targets[h.rng.Intn(len(h.targets))]
	switch draw := h.rng.Float64(); {
	case draw < 0.25:
		h.report.Predicts++
		h.post(target, "/v1/predict", h.predictBody(), "")
	case draw < 0.40:
		h.report.Bounds++
		h.post(target, "/v1/bounds", h.boundsBody(), "")
	case draw < 0.70:
		h.report.Submits++
		h.submit(target, "/v1/simulate", h.simBody())
	case draw < 0.80:
		h.report.Batches++
		h.batch(target)
	default:
		h.report.Polls++
		h.poll(target)
	}
}

// Small deterministic request pools: few enough distinct bodies that
// dedup, cache hits and cross-node polling all get exercised, cheap
// enough that a soak of hundreds of ops stays fast.

func (h *harness) simBody() string {
	return fmt.Sprintf(`{"topo":{"kind":"star","n":3},"v":4,"msg_len":8,"rate":0.002,"seed":%d}`, 1+h.rng.Intn(3))
}

func (h *harness) predictBody() string {
	rates := []string{"0.001", "0.002", "0.004"}
	return fmt.Sprintf(`{"topo":{"kind":"star","n":%d},"v":4,"msg_len":16,"rate":%s}`, 3+h.rng.Intn(2), rates[h.rng.Intn(len(rates))])
}

func (h *harness) boundsBody() string {
	return fmt.Sprintf(`{"topo":{"kind":"star","n":4},"v":6,"msg_len":32,"rate":0.00%d}`, 2+h.rng.Intn(3))
}

// jobEnvelope mirrors the server's async job body.
type jobEnvelope struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// exchange performs one HTTP round trip with the run's deadline,
// returning the status, headers and fully-read body; ok is false on
// any transport failure (tolerated weather while faults fire).
func (h *harness) exchange(method, url, body string) (int, http.Header, []byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), h.cfg.Deadline)
	defer cancel()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		h.report.Errors++
		return 0, nil, nil, false
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(deadlineHeader, h.cfg.Deadline.String())
	resp, err := h.httpc.Do(req)
	if err != nil {
		h.report.Errors++
		return 0, nil, nil, false
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		h.report.Errors++
		return 0, nil, nil, false
	}
	return resp.StatusCode, resp.Header, b, true
}

// verified extracts the trustworthy result bytes from a response, if
// any: the advertised checksum is checked against both wire shapes
// (raw result body, job envelope) exactly as the production client
// does. A mismatch counts as detected corruption and yields nothing.
func (h *harness) verified(hdr http.Header, body []byte) (id string, result []byte, ok bool) {
	var env jobEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.ID == "" {
		return "", nil, false
	}
	if !validJobID(env.ID) {
		h.report.CorruptRejected++
		return "", nil, false
	}
	if env.Status != "done" || env.Result == nil {
		return env.ID, nil, true
	}
	if sum := hdr.Get(resultSumHeader); sum != "" && contentSum(env.Result) != sum {
		h.report.CorruptRejected++
		return env.ID, nil, true // the ack is real, the bytes are not
	}
	return env.ID, env.Result, true
}

func contentSum(body []byte) string {
	sum := sha256.Sum256(body)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// validJobID reports whether id has the only shape the server ever
// mints: "sha256:" + 64 lowercase hex digits. Acknowledgement
// envelopes carry no checksum (there is no result yet to sum), so a
// corrupted ack can hand the driver a phantom id — but the fixed
// content-hash shape makes any flipped byte detectable.
func validJobID(id string) bool {
	const prefix = "sha256:"
	if len(id) != len(prefix)+64 || id[:len(prefix)] != prefix {
		return false
	}
	for i := len(prefix); i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ack records a job acknowledgement and, when verified bytes came
// along, checks byte-identity against every earlier copy.
func (h *harness) ack(id string, result []byte) {
	if id == "" {
		return
	}
	if !h.ackedSet[id] {
		h.ackedSet[id] = true
		h.acked = append(h.acked, id)
	}
	if result == nil {
		return
	}
	if prev, seen := h.canonical[id]; seen {
		if !bytes.Equal(prev, result) {
			h.violate("job %s: result bytes drifted between copies", id)
		}
		return
	}
	h.canonical[id] = append([]byte(nil), result...)
}

// post drives one synchronous compute request; the response body is
// checksum-verified but otherwise only availability-weather.
func (h *harness) post(target, path, body, _ string) {
	status, hdr, b, ok := h.exchange(http.MethodPost, "http://"+target+path, body)
	if !ok || status >= 500 {
		h.report.Errors++
		return
	}
	if status == http.StatusOK {
		if sum := hdr.Get(resultSumHeader); sum != "" && contentSum(b) != sum {
			h.report.CorruptRejected++
		}
	}
}

// submit drives one async submission and records the acknowledgement.
func (h *harness) submit(target, path, body string) {
	status, hdr, b, ok := h.exchange(http.MethodPost, "http://"+target+path, body)
	if !ok || status >= 400 {
		h.report.Errors++
		return
	}
	if id, result, ok := h.verified(hdr, b); ok {
		h.ack(id, result)
	}
}

// batch drives one batched submission (two items) and records every
// per-item acknowledgement.
func (h *harness) batch(target string) {
	body := fmt.Sprintf(`{"items":[{"kind":"simulate","config":%s},{"kind":"simulate","config":%s}]}`, h.simBody(), h.simBody())
	status, _, b, ok := h.exchange(http.MethodPost, "http://"+target+"/v1/jobs:batch", body)
	if !ok || status != http.StatusOK {
		h.report.Errors++
		return
	}
	var resp struct {
		Items []struct {
			ID string `json:"id"`
		} `json:"items"`
	}
	if err := json.Unmarshal(b, &resp); err != nil {
		h.report.Errors++
		return
	}
	for _, it := range resp.Items {
		if !validJobID(it.ID) {
			h.report.CorruptRejected++
			continue
		}
		h.ack(it.ID, nil)
	}
}

// poll drives one job poll for a previously acknowledged id.
func (h *harness) poll(target string) {
	if len(h.acked) == 0 {
		return
	}
	id := h.acked[h.rng.Intn(len(h.acked))]
	status, hdr, b, ok := h.exchange(http.MethodGet, "http://"+target+"/v1/jobs/"+id, "")
	if !ok || status != http.StatusOK {
		h.report.Errors++
		return
	}
	if pid, result, ok := h.verified(hdr, b); ok && pid == id {
		h.ack(id, result)
	}
}

// drain proves no acknowledged job was lost: after the fabric heals,
// every acked id must be served done — with byte-identical, verified
// result bytes — from every target.
func (h *harness) drain() {
	ids := append([]string(nil), h.acked...)
	sort.Strings(ids)
	for _, id := range ids {
		for _, target := range h.targets {
			if !h.drainOne(id, target) {
				h.violate("job %s: acknowledged but not servable from %s after heal", id, target)
			}
		}
	}
}

// drainOne polls one (id, target) pair until a verified done result
// arrives (checking byte-identity) or the attempt budget runs out.
func (h *harness) drainOne(id, target string) bool {
	for attempt := 0; attempt < h.cfg.DrainAttempts; attempt++ {
		status, hdr, b, ok := h.exchange(http.MethodGet, "http://"+target+"/v1/jobs/"+id, "")
		if ok && status == http.StatusOK {
			var env jobEnvelope
			if err := json.Unmarshal(b, &env); err == nil {
				if env.Status == "failed" {
					h.violate("job %s: acknowledged then failed: %s", id, env.Error)
					return true // reported as its own violation, not as lost
				}
				if env.Status == "done" && env.Result != nil {
					if sum := hdr.Get(resultSumHeader); sum != "" && contentSum(env.Result) != sum {
						h.report.CorruptRejected++
					} else {
						h.ack(id, env.Result)
						return true
					}
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// breakerMetrics is the slice of /metricsz this harness reads.
type breakerMetrics struct {
	Cluster *struct {
		PeerBreakers []struct {
			Route string `json:"route"`
			State string `json:"state"`
		} `json:"peer_breakers"`
	} `json:"cluster"`
}

// checkBreakers proves breaker liveness: with the fabric healed and
// fresh traffic flowing, no peer breaker may stay pinned open. Open
// breakers are given traffic (half-open probes only fire on demand)
// and re-checked.
func (h *harness) checkBreakers() {
	for _, target := range h.targets {
		if !h.breakersRecover(target) {
			h.violate("breakers pinned open on %s after faults cleared", target)
		}
	}
}

func (h *harness) breakersRecover(target string) bool {
	for attempt := 0; attempt < h.cfg.DrainAttempts; attempt++ {
		status, _, b, ok := h.exchange(http.MethodGet, "http://"+target+"/metricsz", "")
		if ok && status == http.StatusOK {
			var m breakerMetrics
			if err := json.Unmarshal(b, &m); err == nil {
				open := false
				if m.Cluster != nil {
					for _, pb := range m.Cluster.PeerBreakers {
						if pb.State == "open" {
							open = true
						}
					}
				}
				if !open {
					return true
				}
			}
		}
		// Give half-open probes something to probe with. The body
		// varies per attempt so the content-hash ids sweep every ring
		// owner — a breaker only probes when a request actually routes
		// through its peer.
		body := fmt.Sprintf(`{"topo":{"kind":"star","n":4},"v":4,"msg_len":%d,"rate":0.003}`, 8+attempt%64)
		h.post(target, "/v1/predict", body, "")
		time.Sleep(10 * time.Millisecond)
	}
	return false
}
