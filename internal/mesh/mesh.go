// Package mesh implements the k-ary n-dimensional mesh (no
// wraparound) — the topology of the paper's reference [17]
// (Najafabadi, Sarbazi-Azad & Rajabzadeh, MASCOTS'04). Meshes are
// bipartite (digit-sum parity; no wraparound edges to break it), so
// the negative-hop routing family applies unchanged, but they are
// *not* vertex- or edge-symmetric: border channels carry less
// traffic than central ones under uniform load, which violates the
// evenly-distributed channel-rate assumption behind the paper's
// eq. 3. The package therefore supports the simulator and routing
// layers only; the symmetric analytical model intentionally has no
// mesh path structure (TestMeshBreaksChannelSymmetry demonstrates
// why).
package mesh

import (
	"fmt"

	"starperf/internal/cfgerr"
)

// Graph is an in-memory k-ary n-mesh. Nodes are n-digit radix-k
// addresses; dimension d < n moves +1 in digit d, dimension n+d moves
// −1. Channels off the edge of the mesh do not exist: Neighbor
// returns -1 and HasChannel reports false.
type Graph struct {
	k, n    int
	nodes   int
	pow     []int
	avgDist float64
}

// New constructs a k-ary n-mesh, k ≥ 2, n ≥ 1, at most 2^26 nodes.
func New(k, n int) (*Graph, error) {
	if k < 2 {
		return nil, cfgerr.Errorf("mesh: radix k=%d must be ≥ 2", k)
	}
	if n < 1 {
		return nil, cfgerr.Errorf("mesh: dimension n=%d must be ≥ 1", n)
	}
	nodes := 1
	pow := make([]int, n+1)
	pow[0] = 1
	for i := 1; i <= n; i++ {
		if nodes > (1<<26)/k {
			return nil, cfgerr.Errorf("mesh: %d-ary %d-mesh too large", k, n)
		}
		nodes *= k
		pow[i] = nodes
	}
	// mean |i−j| over ordered digit pairs (including equal) is
	// (k²−1)/(3k); distances add across dimensions.
	perDim := float64(k*k-1) / float64(3*k)
	avg := float64(n) * perDim * float64(nodes) / float64(nodes-1)
	return &Graph{k: k, n: n, nodes: nodes, pow: pow, avgDist: avg}, nil
}

// MustNew is New but panics on error.
func MustNew(k, n int) *Graph {
	g, err := New(k, n)
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns "M<k>x<n>".
func (g *Graph) Name() string { return fmt.Sprintf("M%dx%d", g.k, g.n) }

// Radix returns k.
func (g *Graph) Radix() int { return g.k }

// Dims returns n.
func (g *Graph) Dims() int { return g.n }

// N returns k^n.
func (g *Graph) N() int { return g.nodes }

// Degree returns 2n dimension slots; border nodes lack some of the
// corresponding channels (see HasChannel).
func (g *Graph) Degree() int { return 2 * g.n }

func (g *Graph) digit(node, i int) int { return node / g.pow[i] % g.k }

// HasChannel implements topology.Partial.
func (g *Graph) HasChannel(node, dim int) bool {
	if dim < g.n {
		return g.digit(node, dim) < g.k-1
	}
	return g.digit(node, dim-g.n) > 0
}

// Neighbor returns the node across the channel, or -1 when the
// channel does not exist (edge of the mesh).
func (g *Graph) Neighbor(node, dim int) int {
	if !g.HasChannel(node, dim) {
		return -1
	}
	if dim < g.n {
		return node + g.pow[dim]
	}
	return node - g.pow[dim-g.n]
}

// Distance is the Manhattan distance.
func (g *Graph) Distance(a, b int) int {
	sum := 0
	for i := 0; i < g.n; i++ {
		d := g.digit(a, i) - g.digit(b, i)
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}

// ProfitableDims appends, per dimension with a non-zero offset, the
// single channel moving towards the destination (meshes have no
// half-ring ties).
func (g *Graph) ProfitableDims(cur, dst int, buf []int) []int {
	for i := 0; i < g.n; i++ {
		dc, dd := g.digit(cur, i), g.digit(dst, i)
		switch {
		case dc < dd:
			buf = append(buf, i)
		case dc > dd:
			buf = append(buf, i+g.n)
		}
	}
	return buf
}

// Color returns the digit-sum parity; every existing link joins
// opposite parities.
func (g *Graph) Color(node int) int {
	s := 0
	for i := 0; i < g.n; i++ {
		s += g.digit(node, i)
	}
	return s & 1
}

// Diameter returns n(k−1).
func (g *Graph) Diameter() int { return g.n * (g.k - 1) }

// AvgDistance returns the exact mean distance to the other k^n − 1
// nodes.
func (g *Graph) AvgDistance() float64 { return g.avgDist }
