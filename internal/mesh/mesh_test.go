package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"starperf/internal/topology"
)

func bfs(g *Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	q := []int{src}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for d := 0; d < g.Degree(); d++ {
			w := g.Neighbor(v, d)
			if w >= 0 && dist[w] < 0 {
				dist[w] = dist[v] + 1
				q = append(q, w)
			}
		}
	}
	return dist
}

func TestDistanceMatchesBFS(t *testing.T) {
	for _, kn := range [][2]int{{3, 2}, {4, 2}, {5, 2}, {3, 3}} {
		g := MustNew(kn[0], kn[1])
		for _, src := range []int{0, g.N() / 2, g.N() - 1} {
			dist := bfs(g, src)
			for v := 0; v < g.N(); v++ {
				if dist[v] != g.Distance(src, v) {
					t.Fatalf("%s distance(%d,%d): %d vs BFS %d",
						g.Name(), src, v, g.Distance(src, v), dist[v])
				}
			}
		}
	}
}

func TestBorderChannels(t *testing.T) {
	g := MustNew(4, 2)
	// node 0 (corner): only +x and +y exist
	if !g.HasChannel(0, 0) || !g.HasChannel(0, 1) {
		t.Fatal("corner missing positive channels")
	}
	if g.HasChannel(0, 2) || g.HasChannel(0, 3) {
		t.Fatal("corner has negative channels")
	}
	if g.Neighbor(0, 2) != -1 {
		t.Fatal("missing channel did not return -1")
	}
	// interior node 5 = (1,1): all four
	for d := 0; d < 4; d++ {
		if !g.HasChannel(5, d) || g.Neighbor(5, d) < 0 {
			t.Fatalf("interior node missing channel %d", d)
		}
	}
}

func TestProfitableExactAndInsideMesh(t *testing.T) {
	g := MustNew(5, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cur, dst := rng.Intn(g.N()), rng.Intn(g.N())
		dims := g.ProfitableDims(cur, dst, nil)
		if cur == dst {
			return len(dims) == 0
		}
		d := g.Distance(cur, dst)
		for _, dim := range dims {
			next := g.Neighbor(cur, dim)
			if next < 0 {
				return false // profitable move off the mesh edge
			}
			if g.Distance(next, dst) != d-1 {
				return false
			}
		}
		// mesh adaptivity: exactly one profitable channel per
		// unfinished dimension
		want := 0
		for i := 0; i < g.Dims(); i++ {
			if (cur/pow(g.Radix(), i))%g.Radix() != (dst/pow(g.Radix(), i))%g.Radix() {
				want++
			}
		}
		return len(dims) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func TestBipartite(t *testing.T) {
	g := MustNew(5, 2) // odd radix is fine for meshes
	for v := 0; v < g.N(); v++ {
		for d := 0; d < g.Degree(); d++ {
			if w := g.Neighbor(v, d); w >= 0 && g.Color(v) == g.Color(w) {
				t.Fatalf("edge inside colour class: %d-%d", v, w)
			}
		}
	}
}

func TestDiameterAndAvg(t *testing.T) {
	g := MustNew(4, 2)
	if g.Diameter() != 6 {
		t.Fatalf("diameter %d", g.Diameter())
	}
	var sum float64
	max := 0
	for a := 0; a < g.N(); a++ {
		for b := 0; b < g.N(); b++ {
			if a == b {
				continue
			}
			d := g.Distance(a, b)
			sum += d2f(d)
			if d > max {
				max = d
			}
		}
	}
	if max != 6 {
		t.Fatalf("observed diameter %d", max)
	}
	brute := sum / float64(g.N()*(g.N()-1))
	if got := g.AvgDistance(); got < brute-1e-12 || got > brute+1e-12 {
		t.Fatalf("avg distance %v, brute %v", got, brute)
	}
}

func d2f(d int) float64 { return float64(d) }

func TestRejectsBadParams(t *testing.T) {
	for _, kn := range [][2]int{{1, 2}, {0, 1}, {4, 0}, {2, 30}} {
		if _, err := New(kn[0], kn[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", kn[0], kn[1])
		}
	}
}

func TestTopologyCompliance(t *testing.T) {
	var g topology.Topology = MustNew(3, 2)
	var _ topology.Partial = MustNew(3, 2)
	if topology.HasChannel(g, 0, 2) {
		t.Fatal("HasChannel helper ignored Partial")
	}
}
