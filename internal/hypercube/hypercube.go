// Package hypercube implements the binary m-cube Q_m as a
// topology.Topology, used for the star-vs-hypercube comparison the
// paper lists as future work. Nodes are the 2^m bit strings; two
// nodes are adjacent iff they differ in exactly one bit.
package hypercube

import (
	"fmt"
	"math/bits"

	"starperf/internal/cfgerr"
)

// Graph is an in-memory Q_m. All methods are pure and safe for
// concurrent use.
type Graph struct {
	m       int
	nodes   int
	avgDist float64
}

// MaxM bounds the cube dimension so node counts stay in int range and
// table-free arithmetic stays exact.
const MaxM = 30

// New constructs Q_m for 1 ≤ m ≤ MaxM.
func New(m int) (*Graph, error) {
	if m < 1 || m > MaxM {
		return nil, cfgerr.Errorf("hypercube: m=%d out of range [1,%d]", m, MaxM)
	}
	n := 1 << m
	// average distance to the 2^m −1 other nodes: Σ k·C(m,k) = m·2^(m−1)
	avg := float64(m) * float64(n/2) / float64(n-1)
	return &Graph{m: m, nodes: n, avgDist: avg}, nil
}

// MustNew is New but panics on error.
func MustNew(m int) *Graph {
	g, err := New(m)
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns "Q<m>".
func (g *Graph) Name() string { return fmt.Sprintf("Q%d", g.m) }

// Dimensions returns m.
func (g *Graph) Dimensions() int { return g.m }

// N returns 2^m.
func (g *Graph) N() int { return g.nodes }

// Degree returns m.
func (g *Graph) Degree() int { return g.m }

// Neighbor flips bit dim of node.
func (g *Graph) Neighbor(node, dim int) int { return node ^ (1 << dim) }

// Distance is the Hamming distance.
func (g *Graph) Distance(a, b int) int { return bits.OnesCount32(uint32(a ^ b)) }

// ProfitableDims appends the dimensions in which cur and dst differ.
func (g *Graph) ProfitableDims(cur, dst int, buf []int) []int {
	diff := uint32(cur ^ dst)
	for diff != 0 {
		dim := bits.TrailingZeros32(diff)
		buf = append(buf, dim)
		diff &= diff - 1
	}
	return buf
}

// Color returns the parity of the node's bit count; the hypercube is
// bipartite with every link joining opposite parities.
func (g *Graph) Color(node int) int { return bits.OnesCount32(uint32(node)) & 1 }

// Diameter returns m.
func (g *Graph) Diameter() int { return g.m }

// AvgDistance returns m·2^(m−1)/(2^m−1).
func (g *Graph) AvgDistance() float64 { return g.avgDist }
