package hypercube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"starperf/internal/topology"
)

func TestBasicProperties(t *testing.T) {
	g := MustNew(4)
	if g.N() != 16 || g.Degree() != 4 || g.Diameter() != 4 {
		t.Fatalf("Q4: N=%d Degree=%d Diameter=%d", g.N(), g.Degree(), g.Diameter())
	}
	if g.Name() != "Q4" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestNeighborInvolution(t *testing.T) {
	g := MustNew(5)
	for v := 0; v < g.N(); v++ {
		for d := 0; d < g.Degree(); d++ {
			w := g.Neighbor(v, d)
			if w == v || g.Neighbor(w, d) != v || g.Distance(v, w) != 1 {
				t.Fatalf("bad edge %d --%d--> %d", v, d, w)
			}
			if g.Color(v) == g.Color(w) {
				t.Fatalf("edge inside colour class: %d-%d", v, w)
			}
		}
	}
}

func TestProfitableDims(t *testing.T) {
	g := MustNew(6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := rng.Intn(g.N()), rng.Intn(g.N())
		dims := g.ProfitableDims(a, b, nil)
		if len(dims) != g.Distance(a, b) {
			return false
		}
		for _, d := range dims {
			if g.Distance(g.Neighbor(a, d), b) != g.Distance(a, b)-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgDistance(t *testing.T) {
	g := MustNew(7)
	var sum float64
	for v := 1; v < g.N(); v++ {
		sum += float64(g.Distance(0, v))
	}
	brute := sum / float64(g.N()-1)
	if got := g.AvgDistance(); got < brute-1e-12 || got > brute+1e-12 {
		t.Fatalf("AvgDistance %v, brute %v", got, brute)
	}
}

func TestNewRejectsBadM(t *testing.T) {
	for _, m := range []int{0, -1, 31} {
		if _, err := New(m); err == nil {
			t.Errorf("New(%d) succeeded", m)
		}
	}
}

func TestTopologyCompliance(t *testing.T) {
	var _ topology.Topology = MustNew(3)
}

func TestRequiredNegativeHopsWalk(t *testing.T) {
	g := MustNew(6)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		src, dst := rng.Intn(g.N()), rng.Intn(g.N())
		want := topology.RequiredNegativeHops(g.Color(src), g.Distance(src, dst))
		cur, neg := src, 0
		for cur != dst {
			dims := g.ProfitableDims(cur, dst, nil)
			next := g.Neighbor(cur, dims[rng.Intn(len(dims))])
			if g.Color(cur) == 1 && g.Color(next) == 0 {
				neg++
			}
			cur = next
		}
		if neg != want {
			t.Fatalf("src %d dst %d: %d negative hops, predicted %d", src, dst, neg, want)
		}
	}
}
