package queueing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMG1MM1Consistency(t *testing.T) {
	// With exponential service (σ² = S²) the P-K formula reduces to
	// the M/M/1 waiting time ρS/(1−ρ).
	lambda, s := 0.02, 30.0
	w, err := MG1Wait(lambda, s, s*s)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda * s
	want := rho * s / (1 - rho)
	if math.Abs(w-want) > 1e-12 {
		t.Fatalf("M/M/1 wait %v, want %v", w, want)
	}
}

func TestMG1Deterministic(t *testing.T) {
	// Deterministic service (σ² = 0) gives half the M/M/1 wait.
	lambda, s := 0.01, 50.0
	w, err := MG1Wait(lambda, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := lambda * s * s / (2 * (1 - lambda*s))
	if math.Abs(w-want) > 1e-12 {
		t.Fatalf("M/D/1 wait %v, want %v", w, want)
	}
}

func TestMG1Unstable(t *testing.T) {
	w, err := MG1Wait(0.05, 30, 0)
	var u ErrUnstable
	if !errors.As(err, &u) {
		t.Fatalf("err = %v, want ErrUnstable", err)
	}
	if !math.IsInf(w, 1) {
		t.Fatalf("wait %v, want +Inf", w)
	}
	if u.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestMG1Edges(t *testing.T) {
	if w, err := MG1Wait(0, 10, 5); err != nil || w != 0 {
		t.Fatal("zero arrivals should wait 0")
	}
	if _, err := MG1Wait(-1, 10, 5); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

func TestMG1Monotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 1 + rng.Float64()*100
		l1 := rng.Float64() * 0.9 / s
		l2 := l1 + rng.Float64()*(0.99/s-l1)
		w1, err1 := MG1Wait(l1, s, PaperVariance(s, s/2))
		w2, err2 := MG1Wait(l2, s, PaperVariance(s, s/2))
		return err1 == nil && err2 == nil && w2 >= w1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelAndSourceWait(t *testing.T) {
	w1, err := ChannelWait(0.01, 40, 32)
	if err != nil || w1 <= 0 {
		t.Fatalf("channel wait %v err %v", w1, err)
	}
	// Source queue divides the arrival rate by V, so it waits less.
	w2, err := SourceWait(0.01, 6, 40, 32)
	if err != nil || w2 <= 0 || w2 >= w1 {
		t.Fatalf("source wait %v (channel %v) err %v", w2, w1, err)
	}
	if _, err := SourceWait(0.01, 0, 40, 32); err == nil {
		t.Fatal("V=0 accepted")
	}
}

func TestVCOccupancyDistribution(t *testing.T) {
	p := VCOccupancy(0.01, 40, 6)
	var sum float64
	for _, x := range p {
		if x < 0 {
			t.Fatalf("negative probability %v", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// geometric shape: decreasing when rho < 1
	for i := 1; i < len(p)-1; i++ {
		if p[i] > p[i-1] {
			t.Fatalf("P not decreasing at %d: %v", i, p)
		}
	}
}

func TestVCOccupancyZeroLoad(t *testing.T) {
	p := VCOccupancy(0, 40, 4)
	if p[0] != 1 {
		t.Fatalf("zero load P0 = %v", p[0])
	}
	for _, x := range p[1:] {
		if x != 0 {
			t.Fatalf("zero load busy prob %v", x)
		}
	}
}

func TestVCOccupancySaturated(t *testing.T) {
	p := VCOccupancy(0.1, 40, 4) // rho = 4
	var sum float64
	for _, x := range p {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("saturated probabilities sum to %v", sum)
	}
	if p[4] < 0.7 {
		t.Fatalf("deep saturation should pile on P_V, got %v", p)
	}
}

func TestMultiplexing(t *testing.T) {
	// all mass on v=0: idle channel multiplexes at degree 1
	if m := Multiplexing([]float64{1, 0, 0}); m != 1 {
		t.Fatalf("idle multiplexing %v", m)
	}
	// all mass on v=k: multiplexing = k
	if m := Multiplexing([]float64{0, 0, 0, 1}); math.Abs(m-3) > 1e-12 {
		t.Fatalf("multiplexing %v, want 3", m)
	}
	// mixture is between min and max busy counts
	m := Multiplexing([]float64{0.2, 0.5, 0.3})
	if m < 1 || m > 2 {
		t.Fatalf("multiplexing %v outside [1,2]", m)
	}
}

func TestMultiplexingBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := 1 + rng.Intn(12)
		p := VCOccupancy(rng.Float64()*0.03, 10+rng.Float64()*90, v)
		m := Multiplexing(p)
		return m >= 1-1e-12 && m <= float64(v)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllBusyProbBasics(t *testing.T) {
	p := []float64{0.1, 0.2, 0.3, 0.4} // V = 3
	if got := AllBusyProb(p, 0); got != 1 {
		t.Fatalf("k=0 prob %v", got)
	}
	if got := AllBusyProb(p, 4); got != 0 {
		t.Fatalf("k>V prob %v", got)
	}
	// k=V: only the all-busy state counts
	if got := AllBusyProb(p, 3); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("k=V prob %v, want 0.4", got)
	}
	// k=1: E[busy]/V by symmetry: Σ P_v · v/V
	want := (0.2*1 + 0.3*2 + 0.4*3) / 3
	if got := AllBusyProb(p, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("k=1 prob %v, want %v", got, want)
	}
}

func TestAllBusyProbMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := 1 + rng.Intn(12)
		p := VCOccupancy(rng.Float64()*0.02, 20+rng.Float64()*60, v)
		prev := 1.0
		for k := 0; k <= v; k++ {
			cur := AllBusyProb(p, k)
			if cur > prev+1e-12 || cur < -1e-15 || cur > 1+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAllBusyProbMonteCarlo cross-checks the hypergeometric step by
// direct sampling: draw busy sets uniformly conditioned on |busy|=v
// with probability P_v and count how often a fixed set of k channels
// is fully busy.
func TestAllBusyProbMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const V, k = 6, 3
	p := VCOccupancy(0.012, 45, V)
	want := AllBusyProb(p, k)
	hits, trials := 0, 200000
	for i := 0; i < trials; i++ {
		// sample busy count from p
		u := rng.Float64()
		busy := 0
		for cum := p[0]; u > cum && busy < V; {
			busy++
			cum += p[busy]
		}
		// choose busy set uniformly: first k indices busy?
		idx := rng.Perm(V)[:busy]
		cnt := 0
		for _, j := range idx {
			if j < k {
				cnt++
			}
		}
		if cnt == k {
			hits++
		}
	}
	got := float64(hits) / float64(trials)
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("Monte Carlo %v vs analytic %v", got, want)
	}
}

func TestVCOccupancyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative V did not panic")
		}
	}()
	VCOccupancy(0.1, 1, -1)
}
