// Package queueing implements the queueing-theoretic building blocks
// of the paper's analytical model: the M/G/1 mean waiting time with
// the paper's service-time variance approximation (eqs. 12–16), the
// truncated birth–death occupancy distribution of a physical
// channel's virtual channels (eq. 18), and Dally's average
// virtual-channel multiplexing degree (eq. 19).
package queueing

import (
	"fmt"
	"math"

	"starperf/internal/cfgerr"
)

// ErrUnstable is returned (wrapped) when a queue's utilisation
// reaches or exceeds one, i.e. the network is saturated at the
// requested operating point.
type ErrUnstable struct {
	Rho float64
}

func (e ErrUnstable) Error() string {
	return fmt.Sprintf("queueing: utilisation %.4f ≥ 1 (saturated)", e.Rho)
}

// MG1Wait returns the mean waiting time of an M/G/1 queue with
// arrival rate lambda, mean service time s and service-time variance
// variance (Pollaczek–Khinchine):
//
//	W = λ S² (1 + σ²/S²) / (2 (1 − λS))
//
// It returns ErrUnstable when λS ≥ 1.
func MG1Wait(lambda, s, variance float64) (float64, error) {
	if lambda < 0 || s < 0 || variance < 0 {
		return 0, cfgerr.Errorf("queueing: negative parameter (λ=%v, S=%v, σ²=%v)", lambda, s, variance)
	}
	if lambda <= 0 || s <= 0 { // negatives were rejected above
		return 0, nil
	}
	rho := lambda * s
	if rho >= 1 {
		return math.Inf(1), ErrUnstable{Rho: rho}
	}
	cs2 := variance / (s * s)
	return lambda * s * s * (1 + cs2) / (2 * (1 - rho)), nil
}

// PaperVariance returns the paper's approximation of the channel
// service-time variance, σ² = (S − M)², where M is the message
// length (the minimum possible service time).
func PaperVariance(s, m float64) float64 {
	d := s - m
	return d * d
}

// ChannelWait is the paper's eq. 15: the mean waiting time at a
// network channel treated as an M/G/1 queue with arrival rate
// lambdaC, service time s and variance (S−M)².
func ChannelWait(lambdaC, s, m float64) (float64, error) {
	return MG1Wait(lambdaC, s, PaperVariance(s, m))
}

// SourceWait is the paper's eq. 16: the mean waiting time in the
// source queue, modelled as an M/G/1 queue with arrival rate λg/V
// per injection virtual channel and service time s with variance
// (S−M)².
func SourceWait(lambdaG float64, v int, s, m float64) (float64, error) {
	if v <= 0 {
		return 0, fmt.Errorf("queueing: V=%d", v)
	}
	return MG1Wait(lambdaG/float64(v), s, PaperVariance(s, m))
}

// VCOccupancy returns the steady-state probabilities P[v], v = 0..V,
// that v of the V virtual channels of a physical channel are busy
// (the paper's eq. 18): a truncated birth–death chain with arrival
// rate lambdaC and service rate 1/S, solved with the paper's
// approximation
//
//	P_v = (λc S)^v (1 − λc S)   for v < V,
//	P_V = (λc S)^V.
//
// When λcS ≥ 1 the closed form is invalid; the chain is then solved
// exactly (normalised geometric), which degrades gracefully towards
// P_V → 1 in deep saturation.
func VCOccupancy(lambdaC, s float64, v int) []float64 {
	if v < 0 {
		panic(fmt.Sprintf("queueing: VCOccupancy V=%d", v))
	}
	p := make([]float64, v+1)
	rho := lambdaC * s
	if rho <= 0 {
		p[0] = 1
		return p
	}
	if rho < 1 {
		for i := 0; i < v; i++ {
			p[i] = math.Pow(rho, float64(i)) * (1 - rho)
		}
		p[v] = math.Pow(rho, float64(v))
		return p
	}
	// saturated: normalise the geometric weights explicitly
	var sum float64
	for i := 0; i <= v; i++ {
		p[i] = math.Pow(rho, float64(i))
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// Multiplexing returns Dally's average degree of virtual-channel
// multiplexing (the paper's eq. 19):
//
//	V̄ = Σ v² P_v / Σ v P_v,
//
// which weights each busy count by how often flits experience it.
// It returns 1 when no channel is ever busy.
func Multiplexing(p []float64) float64 {
	var num, den float64
	for v, pv := range p {
		num += float64(v*v) * pv
		den += float64(v) * pv
	}
	if den <= 0 { // no busy samples (the summands are non-negative)
		return 1
	}
	return num / den
}

// AllBusyProb returns the probability that a *specific* set of k of
// the V virtual channels of a channel is entirely busy, given the
// busy-count distribution p (len V+1): Σ_v P_v · C(V−k, v−k)/C(V, v),
// the standard combinatorial step behind the paper's eqs. 9–11.
// k ≤ 0 returns 1 (an empty requirement is always met); k > V
// returns 0.
func AllBusyProb(p []float64, k int) float64 {
	v := len(p) - 1
	if k <= 0 {
		return 1
	}
	if k > v {
		return 0
	}
	var sum float64
	for busy := k; busy <= v; busy++ {
		sum += p[busy] * hyper(v, k, busy)
	}
	return sum
}

// hyper returns C(V−k, busy−k)/C(V, busy): the probability that busy
// uniformly-chosen busy VCs include k specific ones.
func hyper(v, k, busy int) float64 {
	// Equivalent product form: Π_{i=0..k-1} (busy−i)/(V−i).
	r := 1.0
	for i := 0; i < k; i++ {
		r *= float64(busy-i) / float64(v-i)
	}
	return r
}
