package starperf

// One benchmark per reproduced artefact (see DESIGN.md §3). Each
// benchmark regenerates its figure panel at reduced sweep resolution
// and reports, as custom metrics, the quantities the paper's plots
// convey: the mean model/simulation latency over the stable region
// and the mean absolute relative model error. Run with
//
//	go test -bench=Figure -benchmem
//
// and use cmd/starfig for full-resolution panels.

import (
	"math"
	"runtime"
	"testing"

	"starperf/internal/experiments"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
)

func benchOpts() experiments.SimOptions {
	return experiments.SimOptions{
		Warmup:  3000,
		Measure: 10000,
		Drain:   40000,
		Seeds:   []uint64{1},
	}
}

// reportPanel extracts summary metrics from a panel.
func reportPanel(b *testing.B, p *experiments.Panel) {
	b.Helper()
	var relSum, simSum, modelSum float64
	var cnt int
	for _, s := range p.Series {
		for _, pt := range s.Points {
			if pt.SimSaturated || pt.ModelSaturated || math.IsNaN(pt.Model) || pt.Model == 0 {
				continue
			}
			relSum += math.Abs(pt.Model-pt.Sim) / pt.Sim
			simSum += pt.Sim
			modelSum += pt.Model
			cnt++
		}
	}
	if cnt > 0 {
		b.ReportMetric(relSum/float64(cnt)*100, "model-err-%")
		b.ReportMetric(simSum/float64(cnt), "sim-latency")
		b.ReportMetric(modelSum/float64(cnt), "model-latency")
	}
	if bad := experiments.ShapeChecks(p, 0.45); len(bad) != 0 {
		b.Fatalf("shape violations: %v", bad)
	}
}

// BenchmarkFigure1a regenerates Figure 1(a): S5, V=6, M=32 and 64.
func BenchmarkFigure1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.Figure1Panel(experiments.Figure1Config{
			Panel: 'a', Points: 6, Workers: runtime.NumCPU(), Sim: benchOpts(),
		})
		if err != nil {
			b.Fatal(err)
		}
		reportPanel(b, p)
	}
}

// BenchmarkFigure1b regenerates Figure 1(b): S5, V=9.
func BenchmarkFigure1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.Figure1Panel(experiments.Figure1Config{
			Panel: 'b', Points: 6, Workers: runtime.NumCPU(), Sim: benchOpts(),
		})
		if err != nil {
			b.Fatal(err)
		}
		reportPanel(b, p)
	}
}

// BenchmarkFigure1c regenerates Figure 1(c): S5, V=12, rates to 0.02.
func BenchmarkFigure1c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.Figure1Panel(experiments.Figure1Config{
			Panel: 'c', Points: 6, Workers: runtime.NumCPU(), Sim: benchOpts(),
		})
		if err != nil {
			b.Fatal(err)
		}
		reportPanel(b, p)
	}
}

// BenchmarkValidationGrid covers the paper's §5 validation-grid claim
// (several network sizes, message lengths and VC counts), reporting
// the share of grid rows where the model lands within 30% of the
// simulator.
func BenchmarkValidationGrid(b *testing.B) {
	opts := benchOpts()
	opts.Measure = 6000
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ValidationGrid(opts)
		if err != nil {
			b.Fatal(err)
		}
		good, total := 0, 0
		for _, r := range rows {
			if math.IsNaN(r.ErrPct) {
				continue
			}
			total++
			if math.Abs(r.ErrPct) <= 30 {
				good++
			}
		}
		if total == 0 {
			b.Fatal("empty grid")
		}
		b.ReportMetric(float64(good)/float64(total)*100, "within-30%%")
	}
}

// BenchmarkStarVsHypercube runs the paper's future-work comparison:
// S5 against Q7 at matched M and V, by model and simulation.
func BenchmarkStarVsHypercube(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.StarVsHypercube(32, 6, 5, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		// Report the light-load latency of each network. The sweeps
		// are capacity-proportional (Q7's lightest point carries a
		// higher absolute rate), so assert comparability at equal
		// fractional load rather than strict ordering — Q7's win is
		// in absolute sustainable rate, checked below.
		s5 := p.Series[0].Points[0].Sim
		q7 := p.Series[1].Points[0].Sim
		b.ReportMetric(s5, "s5-latency")
		b.ReportMetric(q7, "q7-latency")
		if q7 > 1.3*s5 {
			b.Fatalf("Q7 light-load latency %.2f far above S5's %.2f", q7, s5)
		}
		lastStable := func(s experiments.Series) float64 {
			rate := 0.0
			for _, pt := range s.Points {
				if !pt.SimSaturated {
					rate = pt.Rate
				}
			}
			return rate
		}
		if lastStable(p.Series[1]) <= lastStable(p.Series[0]) {
			b.Fatalf("Q7 sustainable rate %.4f not above S5's %.4f",
				lastStable(p.Series[1]), lastStable(p.Series[0]))
		}
	}
}

// BenchmarkAblationMixture (A1) compares the three blocking-mixture
// placements of eq. 8 on the model only.
func BenchmarkAblationMixture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationMixture(6, 32, 10)
		if err != nil {
			b.Fatal(err)
		}
		// spread between variants at the heaviest commonly-stable rate
		spread := 0.0
		for _, r := range rows {
			lo, hi := math.Inf(1), math.Inf(-1)
			ok := true
			for _, l := range r.Latency {
				if math.IsNaN(l) {
					ok = false
					break
				}
				lo, hi = math.Min(lo, l), math.Max(hi, l)
			}
			if ok {
				spread = (hi - lo) / lo * 100
			}
		}
		b.ReportMetric(spread, "variant-spread-%")
	}
}

// BenchmarkAblationSelection (A2) compares VC selection policies in
// simulation.
func BenchmarkAblationSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.AblationSelection(6, 32, 4, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range p.Series {
			last := s.Points[len(s.Points)-1]
			b.ReportMetric(last.Sim, s.Name+"-latency")
		}
	}
}

// BenchmarkAblationAlgorithms (A3) reproduces the NHop vs Nbc vs
// Enhanced-Nbc comparison that motivates the paper's algorithm
// choice.
func BenchmarkAblationAlgorithms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.AblationAlgorithms(6, 32, 4, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		// compare at the heaviest rate where every algorithm is stable
		idx := -1
		for j := range p.Series[0].Points {
			ok := true
			for _, s := range p.Series {
				if s.Points[j].SimSaturated {
					ok = false
					break
				}
			}
			if ok {
				idx = j
			}
		}
		if idx < 0 {
			b.Fatal("no commonly stable operating point")
		}
		var lat [3]float64
		for si, s := range p.Series {
			lat[si] = s.Points[idx].Sim
			b.ReportMetric(s.Points[idx].Sim, s.Kind.String()+"-latency")
		}
		if lat[2] > lat[0] {
			b.Fatalf("Enhanced-Nbc (%.2f) slower than NHop (%.2f)", lat[2], lat[0])
		}
	}
}

// BenchmarkThroughput (X3) sweeps offered load past saturation and
// reports the network's saturation throughput — the plateau of the
// accepted-traffic curve.
func BenchmarkThroughput(b *testing.B) {
	g := stargraph.MustNew(5)
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ThroughputSweep(experiments.ThroughputConfig{
			Top: g, Kind: routing.EnhancedNbc, V: 6, MsgLen: 32,
			Points: 6, MaxRate: 0.03, Workers: runtime.NumCPU(), Sim: opts,
		})
		if err != nil {
			b.Fatal(err)
		}
		peak := experiments.SaturationThroughput(rows)
		b.ReportMetric(peak, "sat-throughput")
		// accepted tracks offered at the lightest point and the curve
		// must bend: the heaviest accepted rate stays below offered.
		if rows[0].Accepted < 0.8*rows[0].Offered {
			b.Fatalf("light-load accepted %v vs offered %v", rows[0].Accepted, rows[0].Offered)
		}
		last := rows[len(rows)-1]
		if last.Accepted > 0.95*last.Offered {
			b.Fatalf("no saturation plateau: accepted %v at offered %v", last.Accepted, last.Offered)
		}
	}
}

// BenchmarkSwitching (X7) contrasts wormhole and virtual cut-through
// switching on the same network, reporting each discipline's latency
// at the heaviest rate where wormhole is still stable.
func BenchmarkSwitching(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		p, err := experiments.SwitchingComparison(6, 32, 6, opts)
		if err != nil {
			b.Fatal(err)
		}
		wh, vct := p.Series[0], p.Series[1]
		idx := -1
		for j, pt := range wh.Points {
			if !pt.SimSaturated {
				idx = j
			}
		}
		if idx < 0 {
			b.Fatal("wormhole always saturated")
		}
		b.ReportMetric(wh.Points[idx].Sim, "wormhole-latency")
		b.ReportMetric(vct.Points[idx].Sim, "vct-latency")
		if vct.Points[idx].Sim > wh.Points[idx].Sim*1.05 {
			b.Fatalf("VCT (%.1f) worse than wormhole (%.1f) at the wormhole knee",
				vct.Points[idx].Sim, wh.Points[idx].Sim)
		}
	}
}
