module starperf

go 1.22
