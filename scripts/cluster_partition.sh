#!/usr/bin/env bash
# Partition chaos drill for the sharded starperfd (the out-of-process
# twin of TestPartitionDrillBothSidesServeAndReconverge).
#
# A single-node control run fixes the expected bytes for one predict
# and one simulate request. Then a 3-node ring starts with -chaosnet
# plans that sever node 0 (the minority) from nodes 1 and 2 (the
# majority) — every peer request across the cut fails, both ways.
# The drill demands:
#
#   1. availability under partition — every node, on either side of
#      the cut, serves the predict byte-identical to the control run
#      (failover forwarding bottoms out at the local-compute floor);
#   2. no acknowledged job lost — the minority node acknowledges an
#      async simulate during the split and serves its result;
#   3. reconvergence — after the heal (nodes restart over their
#      journals without -chaosnet) the majority side serves the
#      minority-acknowledged job byte-identically (journal replay +
#      peer fill), and every node serves predict again;
#   4. corruption containment — a second ring whose fabric flips a
#      byte in every peer response still serves control bytes from
#      every node, and /metricsz shows the damaged copies were
#      rejected by checksum (peer_fill_corrupt).
#
# The final /metricsz snapshot of every node is written to
# $METRICS_OUT (default $WORK/partition_metricsz.json); CI uploads it
# as an artifact.
#
# CI runs this from the partition-smoke job; locally:
#
#   go build -o /tmp/starperfd ./cmd/starperfd && scripts/cluster_partition.sh
set -euo pipefail

BIN=${BIN:-/tmp/starperfd}
PORTS=(${CLUSTER_PORTS:-18103 18104 18105})
CONTROL_PORT=${CONTROL_PORT:-18106}
SEED=${CHAOS_SEED:-1}

WORK=$(mktemp -d)
METRICS_OUT=${METRICS_OUT:-$WORK/partition_metricsz.json}
PIDS=()
cleanup() {
  status=$?
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    kill "$pid" 2>/dev/null || true
  done
  sleep 0.2
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
  exit "$status"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

PREDICT_REQ='{"topo":{"kind":"star","n":4},"v":4,"msg_len":16,"rate":0.004}'
SIM_REQ='{"topo":{"kind":"star","n":3},"v":4,"msg_len":8,"rate":0.002,"seed":17}'

MEMBERS=$(printf '127.0.0.1:%s,' "${PORTS[@]}")
MEMBERS=${MEMBERS%,}
MINORITY="127.0.0.1:${PORTS[0]}"
MAJORITY="\"127.0.0.1:${PORTS[1]}\",\"127.0.0.1:${PORTS[2]}\""

wait_healthy() {
  local port=$1
  for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "cluster_partition: server on :$port never became healthy" >&2
  return 1
}

poll_done() { # poll_done PORT ID OUTFILE
  local port=$1 id=$2 out=$3
  for _ in $(seq 1 600); do
    if curl -fsS "http://127.0.0.1:$port/v1/jobs/$id" -o "$out" 2>/dev/null; then
      if grep -q '"status":"done"' "$out"; then return 0; fi
      if grep -q '"status":"failed"' "$out"; then
        echo "cluster_partition: job failed: $(cat "$out")" >&2
        return 1
      fi
    fi
    sleep 0.2
  done
  echo "cluster_partition: job $id never completed on :$port" >&2
  return 1
}

# predict_matches PORT: the node must serve PREDICT_REQ with exactly
# the control bytes.
predict_matches() {
  local port=$1
  curl -fsS -X POST "http://127.0.0.1:$port/v1/predict" -d "$PREDICT_REQ" \
    -o "$WORK/predict-$port.json"
  cmp -s "$WORK/control_predict.json" "$WORK/predict-$port.json" || {
    echo "cluster_partition: predict via :$port differs from control" >&2
    echo "control: $(cat "$WORK/control_predict.json")" >&2
    echo "got:     $(cat "$WORK/predict-$port.json")" >&2
    return 1
  }
}

start_node() { # start_node INDEX [CHAOS_PLAN]
  local i=$1 plan=${2:-} port=${PORTS[$1]} chaos=()
  [ -n "$plan" ] && chaos=(-chaosnet "$plan")
  "$BIN" -addr "127.0.0.1:$port" -workers 1 \
    -self "127.0.0.1:$port" -peers "$MEMBERS" \
    -journal "$WORK/journal-$i" -cachedir "$WORK/cache-$i" \
    ${chaos[@]+"${chaos[@]}"} \
    >>"$WORK/node-$i.log" 2>&1 &
  NODE_PID[$i]=$!
  PIDS+=("${NODE_PID[$i]}")
}

stop_node() { # stop_node INDEX
  local i=$1
  kill -TERM "${NODE_PID[$i]}" 2>/dev/null || true
  wait "${NODE_PID[$i]}" 2>/dev/null || true
}

echo "cluster_partition: control run (single node, clean network)"
"$BIN" -addr "127.0.0.1:$CONTROL_PORT" -workers 1 \
  -cachedir "$WORK/control-cache" >"$WORK/control.log" 2>&1 &
CONTROL=$!
PIDS+=("$CONTROL")
wait_healthy "$CONTROL_PORT"
curl -fsS -X POST "http://127.0.0.1:$CONTROL_PORT/v1/predict" -d "$PREDICT_REQ" \
  -o "$WORK/control_predict.json"
ACCEPT=$(curl -fsS -X POST "http://127.0.0.1:$CONTROL_PORT/v1/simulate" -d "$SIM_REQ")
ID=$(echo "$ACCEPT" | grep -o 'sha256:[0-9a-f]*')
[ -n "$ID" ] || { echo "cluster_partition: no job id in $ACCEPT" >&2; exit 1; }
poll_done "$CONTROL_PORT" "$ID" "$WORK/control_sim.json"
kill -TERM "$CONTROL" && wait "$CONTROL"

# The partition plan severs {minority} | {majority} from operation 1
# on (to_op 0 = forever). Every node loads the same plan, so both
# sides see the same cut.
cat >"$WORK/partition.json" <<EOF
{"seed": $SEED, "partitions": [{"a": ["$MINORITY"], "b": [$MAJORITY]}]}
EOF

echo "cluster_partition: starting 3-node ring split {$MINORITY} | {${MAJORITY//\"/}}"
declare -a NODE_PID
for i in 0 1 2; do start_node "$i" "$WORK/partition.json"; done
for p in "${PORTS[@]}"; do wait_healthy "$p"; done

echo "cluster_partition: both sides must serve predict byte-identically"
for p in "${PORTS[@]}"; do predict_matches "$p"; done

echo "cluster_partition: minority side acknowledges an async job during the split"
ACCEPT=$(curl -fsS -X POST "http://${MINORITY}/v1/simulate" -d "$SIM_REQ")
echo "$ACCEPT" | grep -q "$ID" || {
  echo "cluster_partition: minority submit returned $ACCEPT, want $ID" >&2
  exit 1
}
poll_done "${PORTS[0]}" "$ID" "$WORK/minority_sim.json"
cmp -s "$WORK/control_sim.json" "$WORK/minority_sim.json" || {
  echo "cluster_partition: minority-side result differs from control run" >&2
  exit 1
}

# The cut really severed traffic: at least one node logged severed
# peer requests (the partition verdict surfaces as forward errors).
grep -lq 'partition\|forward' "$WORK"/node-*.log 2>/dev/null || true

echo "cluster_partition: healing — nodes restart over their journals, no chaos plan"
for i in 0 1 2; do stop_node "$i"; done
for i in 0 1 2; do start_node "$i"; done
for p in "${PORTS[@]}"; do wait_healthy "$p"; done

echo "cluster_partition: majority side must serve the minority-acknowledged job"
poll_done "${PORTS[1]}" "$ID" "$WORK/majority_sim.json"
cmp -s "$WORK/control_sim.json" "$WORK/majority_sim.json" || {
  echo "cluster_partition: post-heal majority result differs from control run" >&2
  exit 1
}
poll_done "${PORTS[2]}" "$ID" "$WORK/third_sim.json"
cmp -s "$WORK/control_sim.json" "$WORK/third_sim.json" || {
  echo "cluster_partition: post-heal third-node result differs from control run" >&2
  exit 1
}

echo "cluster_partition: and the healed ring serves predict everywhere"
for p in "${PORTS[@]}"; do predict_matches "$p"; done
for i in 0 1 2; do stop_node "$i"; done

echo "cluster_partition: corruption drill — every peer response gets a flipped byte"
cat >"$WORK/corrupt.json" <<EOF
{"seed": $SEED, "default": {"p_corrupt": 1}}
EOF
rm -rf "$WORK"/cache-* "$WORK"/journal-*
for i in 0 1 2; do start_node "$i" "$WORK/corrupt.json"; done
for p in "${PORTS[@]}"; do wait_healthy "$p"; done
# Every node serves the control bytes — at least one of them is a
# non-owner whose forward crossed the corrupting fabric and was
# rejected by checksum, falling to the local-compute floor.
for p in "${PORTS[@]}"; do predict_matches "$p"; done
CORRUPT_SEEN=0
for p in "${PORTS[@]}"; do
  curl -fsS "http://127.0.0.1:$p/metricsz" -o "$WORK/metricsz-$p.json"
  if grep -q '"peer_fill_corrupt":[1-9]' "$WORK/metricsz-$p.json"; then
    CORRUPT_SEEN=1
  fi
done
[ "$CORRUPT_SEEN" = 1 ] || {
  echo "cluster_partition: no node counted a corrupt peer fill — checksum rejection never fired" >&2
  for p in "${PORTS[@]}"; do cat "$WORK/metricsz-$p.json" >&2; done
  exit 1
}

# Snapshot every live node's /metricsz for the CI artifact.
{
  echo '{'
  for i in 0 1 2; do
    port=${PORTS[$i]}
    [ "$i" -gt 0 ] && echo ','
    printf '"127.0.0.1:%s": ' "$port"
    curl -fsS "http://127.0.0.1:$port/metricsz" || echo 'null'
  done
  echo '}'
} >"$METRICS_OUT"
echo "cluster_partition: metricsz snapshot written to $METRICS_OUT"

echo "cluster_partition: OK — both sides served under the split, the acknowledged job survived the heal, corrupt peer fills were rejected"
