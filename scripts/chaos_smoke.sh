#!/usr/bin/env bash
# Process-level crash-recovery smoke for starperfd -journal.
#
# Drill 1 (single job): an uninterrupted control server computes a
# simulate job to completion. A second server with its own journal and
# cache accepts the same job and is killed with SIGKILL mid-computation
# — no drain, no deferred cleanup, exactly the crash the journal
# exists for. On restart over the same directories the daemon must
# replay the journal, re-enqueue the interrupted job, and finish it
# with a poll body byte-identical to the control run's (job ids are
# content hashes, so both runs name the same job).
#
# Drill 2 (mid-batch, PR 8): the same discipline against the batched
# ingestion path. A POST /v1/jobs:batch of three simulate jobs lands
# as ONE journal group commit; the server is SIGKILLed while the first
# job is still computing, so the crash tears the journal after the
# batch's accepted records but before any completion. The restart must
# requeue every interrupted job from that single commit — never more
# (a resurrected record the commit did not cover), never fewer — and
# every job must poll back byte-identical to an uninterrupted control
# batch.
#
# CI runs this from the chaos-smoke job; locally:
#
#   go build -o /tmp/starperfd ./cmd/starperfd && scripts/chaos_smoke.sh
set -euo pipefail

BIN=${BIN:-/tmp/starperfd}
CONTROL_PORT=${CONTROL_PORT:-18091}
CRASH_PORT=${CRASH_PORT:-18092}

WORK=$(mktemp -d)
SRV=""
PIDS=()
cleanup() {
  status=$?
  # Kill every server this script ever started, current one included:
  # a failure between spawn and the next kill must not leak a daemon.
  for pid in ${SRV:-} ${PIDS[@]+"${PIDS[@]}"}; do
    kill "$pid" 2>/dev/null || true
  done
  sleep 0.2
  for pid in ${SRV:-} ${PIDS[@]+"${PIDS[@]}"}; do
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
  exit "$status"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

# A simulate workload heavy enough (~seconds) that SIGKILL lands while
# the job is still running, so the restart genuinely has to requeue it.
REQ='{"topo":{"kind":"star","n":4},"v":4,"msg_len":16,"rate":0.004,"seed":11,"warmup":5000,"measure":2000000}'

wait_healthy() {
  local port=$1
  for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "chaos_smoke: server on :$port never became healthy" >&2
  return 1
}

poll_done() { # poll_done PORT ID OUTFILE
  local port=$1 id=$2 out=$3
  for _ in $(seq 1 600); do
    if curl -fsS "http://127.0.0.1:$port/v1/jobs/$id" -o "$out" 2>/dev/null; then
      if grep -q '"status":"done"' "$out"; then return 0; fi
      if grep -q '"status":"failed"' "$out"; then
        echo "chaos_smoke: job failed: $(cat "$out")" >&2
        return 1
      fi
    fi
    sleep 0.2
  done
  echo "chaos_smoke: job $id never completed on :$port" >&2
  return 1
}

echo "chaos_smoke: control run (uninterrupted)"
"$BIN" -addr "127.0.0.1:$CONTROL_PORT" -workers 1 \
  -journal "$WORK/control-journal" -cachedir "$WORK/control-cache" &
SRV=$!
PIDS+=("$SRV")
wait_healthy "$CONTROL_PORT"
ACCEPT=$(curl -fsS -X POST "http://127.0.0.1:$CONTROL_PORT/v1/simulate" -d "$REQ")
ID=$(echo "$ACCEPT" | grep -o 'sha256:[0-9a-f]*')
[ -n "$ID" ] || { echo "chaos_smoke: no job id in $ACCEPT" >&2; exit 1; }
poll_done "$CONTROL_PORT" "$ID" "$WORK/control.json"
kill -TERM $SRV && wait $SRV
SRV=""

echo "chaos_smoke: crash run (SIGKILL mid-job)"
"$BIN" -addr "127.0.0.1:$CRASH_PORT" -workers 1 \
  -journal "$WORK/crash-journal" -cachedir "$WORK/crash-cache" &
SRV=$!
PIDS+=("$SRV")
wait_healthy "$CRASH_PORT"
ACCEPT=$(curl -fsS -X POST "http://127.0.0.1:$CRASH_PORT/v1/simulate" -d "$REQ")
CRASH_ID=$(echo "$ACCEPT" | grep -o 'sha256:[0-9a-f]*')
[ "$CRASH_ID" = "$ID" ] || {
  echo "chaos_smoke: content-hash ids diverged: $CRASH_ID vs $ID" >&2
  exit 1
}
kill -9 $SRV
wait $SRV 2>/dev/null || true
SRV=""

echo "chaos_smoke: restart over the crashed journal"
"$BIN" -addr "127.0.0.1:$CRASH_PORT" -workers 1 \
  -journal "$WORK/crash-journal" -cachedir "$WORK/crash-cache" \
  >"$WORK/restart.log" 2>&1 &
SRV=$!
PIDS+=("$SRV")
wait_healthy "$CRASH_PORT"
grep -q 'recovery: 1 requeued' "$WORK/restart.log" || {
  echo "chaos_smoke: restart did not requeue the interrupted job:" >&2
  cat "$WORK/restart.log" >&2
  exit 1
}
poll_done "$CRASH_PORT" "$ID" "$WORK/recovered.json"
# cmp -s so the comparison itself can't write noise; the explicit
# exit 1 is what CI sees when the bytes diverge.
cmp -s "$WORK/control.json" "$WORK/recovered.json" || {
  echo "chaos_smoke: recovered result differs from uninterrupted run" >&2
  echo "control:   $(cat "$WORK/control.json")" >&2
  echo "recovered: $(cat "$WORK/recovered.json")" >&2
  exit 1
}
curl -fsS "http://127.0.0.1:$CRASH_PORT/metricsz" | grep -q '"journal"' || {
  echo "chaos_smoke: /metricsz lost its journal section" >&2
  exit 1
}
kill -TERM $SRV && wait $SRV
SRV=""

echo "chaos_smoke: OK — crash-interrupted job recovered byte-identically"

# ---------------------------------------------------------------- #
# Drill 2: SIGKILL mid-batch.                                       #
# ---------------------------------------------------------------- #

# Three simulate jobs distinct only in seed: heavy enough (~seconds
# each on one worker) that the kill lands with the batch's work still
# in flight.
batch_req() {
  local items="" seed
  for seed in 31 32 33; do
    [ -n "$items" ] && items+=","
    items+="{\"kind\":\"simulate\",\"config\":{\"topo\":{\"kind\":\"star\",\"n\":4},\"v\":4,\"msg_len\":16,\"rate\":0.004,\"seed\":$seed,\"warmup\":5000,\"measure\":3000000}}"
  done
  printf '{"items":[%s]}' "$items"
}

batch_ids() { # batch_ids RESPONSE — ids in item order, newline-separated
  echo "$1" | grep -o 'sha256:[0-9a-f]*'
}

echo "chaos_smoke: batch control run (uninterrupted)"
"$BIN" -addr "127.0.0.1:$CONTROL_PORT" -workers 1 \
  -journal "$WORK/bcontrol-journal" -cachedir "$WORK/bcontrol-cache" &
SRV=$!
PIDS+=("$SRV")
wait_healthy "$CONTROL_PORT"
ACCEPT=$(curl -fsS -X POST "http://127.0.0.1:$CONTROL_PORT/v1/jobs:batch" -d "$(batch_req)")
BATCH_IDS=$(batch_ids "$ACCEPT")
[ "$(echo "$BATCH_IDS" | wc -l)" -eq 3 ] || {
  echo "chaos_smoke: batch accepted $(echo "$BATCH_IDS" | wc -l) items, want 3: $ACCEPT" >&2
  exit 1
}
n=0
for id in $BATCH_IDS; do
  n=$((n + 1))
  poll_done "$CONTROL_PORT" "$id" "$WORK/bcontrol-$n.json"
done
kill -TERM $SRV && wait $SRV
SRV=""

echo "chaos_smoke: batch crash run (SIGKILL mid-batch)"
"$BIN" -addr "127.0.0.1:$CRASH_PORT" -workers 1 \
  -journal "$WORK/bcrash-journal" -cachedir "$WORK/bcrash-cache" &
SRV=$!
PIDS+=("$SRV")
wait_healthy "$CRASH_PORT"
ACCEPT=$(curl -fsS -X POST "http://127.0.0.1:$CRASH_PORT/v1/jobs:batch" -d "$(batch_req)")
CRASH_IDS=$(batch_ids "$ACCEPT")
[ "$CRASH_IDS" = "$BATCH_IDS" ] || {
  echo "chaos_smoke: batch content-hash ids diverged:" >&2
  echo "$CRASH_IDS" >&2
  exit 1
}
# Let the first job get under way, then kill without mercy: the
# journal holds the batch's single group commit of three accepted
# records, plus whatever lifecycle records beat the kill.
sleep 0.3
kill -9 $SRV
wait $SRV 2>/dev/null || true
SRV=""

echo "chaos_smoke: restart over the torn batch journal"
"$BIN" -addr "127.0.0.1:$CRASH_PORT" -workers 1 \
  -journal "$WORK/bcrash-journal" -cachedir "$WORK/bcrash-cache" \
  >"$WORK/brestart.log" 2>&1 &
SRV=$!
PIDS+=("$SRV")
wait_healthy "$CRASH_PORT"
# Every interrupted job from the batch's commit must come back (a job
# that beat the kill to completion is legitimately done, not lost),
# nothing may be unrecoverable, and at least one job must genuinely
# have been interrupted — otherwise the kill landed too late to test
# anything.
grep -Eq 'recovery: [1-3] requeued, [0-2] already satisfied, 0 unrecoverable' "$WORK/brestart.log" || {
  echo "chaos_smoke: restart did not recover the batch's interrupted jobs:" >&2
  cat "$WORK/brestart.log" >&2
  exit 1
}
# No resurrected records: every job id in the recovered journal must
# be one of the batch's three — an alien id would be a record the
# torn tail invented or a corrupt line replay failed to reject.
for jid in $(grep -aho 'sha256:[0-9a-f]*' "$WORK/bcrash-journal"/wal-*.log | sort -u); do
  echo "$BATCH_IDS" | grep -q "^$jid$" || {
    echo "chaos_smoke: journal resurrected unknown job id $jid" >&2
    exit 1
  }
done
n=0
for id in $BATCH_IDS; do
  n=$((n + 1))
  poll_done "$CRASH_PORT" "$id" "$WORK/brecovered-$n.json"
  cmp -s "$WORK/bcontrol-$n.json" "$WORK/brecovered-$n.json" || {
    echo "chaos_smoke: batch item $n recovered differently from control" >&2
    echo "control:   $(cat "$WORK/bcontrol-$n.json")" >&2
    echo "recovered: $(cat "$WORK/brecovered-$n.json")" >&2
    exit 1
  }
done
curl -fsS "http://127.0.0.1:$CRASH_PORT/metricsz" >"$WORK/bmetrics.json"
grep -q '"commits"' "$WORK/bmetrics.json" || {
  echo "chaos_smoke: /metricsz lost its group-commit counters" >&2
  exit 1
}
kill -TERM $SRV && wait $SRV
SRV=""

echo "chaos_smoke: OK — mid-batch crash recovered byte-identically, no resurrected records"
