#!/usr/bin/env bash
# Cluster chaos drill for the sharded starperfd (the out-of-process
# twin of TestClusterChaosDrillOwnerKilledMidJob).
#
# A single-node control run computes a simulate job to completion.
# Then a 3-node ring starts, the job's ring owner is found via
# GET /v1/ring/{id}, the same job is submitted to the owner, and the
# owner is SIGKILLed while its single wedged worker still holds it.
# The drill then demands:
#
#   1. availability — a survivor answers the dead owner's job within
#      the request deadline (failover forwarding or local compute),
#      byte-identical to the control run;
#   2. visibility — the survivor's /metricsz failover counters show
#      the reroute;
#   3. healing — the restarted owner replays its journal, re-enqueues
#      the interrupted job, and serves the same bytes; and the third
#      node, which never computed anything, serves them too (peer
#      cache fill).
#
# The final /metricsz snapshot of every node is written to
# $METRICS_OUT (default $WORK/cluster_metricsz.json); CI uploads it
# as an artifact.
#
# CI runs this from the cluster-smoke job; locally:
#
#   go build -o /tmp/starperfd ./cmd/starperfd && scripts/cluster_chaos.sh
set -euo pipefail

BIN=${BIN:-/tmp/starperfd}
PORTS=(${CLUSTER_PORTS:-18093 18094 18095})
CONTROL_PORT=${CONTROL_PORT:-18096}

WORK=$(mktemp -d)
METRICS_OUT=${METRICS_OUT:-$WORK/cluster_metricsz.json}
PIDS=()
cleanup() {
  status=$?
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    kill "$pid" 2>/dev/null || true
  done
  sleep 0.2
  for pid in ${PIDS[@]+"${PIDS[@]}"}; do
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
  exit "$status"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

# Heavy enough (~seconds) that SIGKILL lands while the job is still
# running on the owner's single worker.
REQ='{"topo":{"kind":"star","n":4},"v":4,"msg_len":16,"rate":0.004,"seed":11,"warmup":5000,"measure":2000000}'

MEMBERS=$(printf '127.0.0.1:%s,' "${PORTS[@]}")
MEMBERS=${MEMBERS%,}

wait_healthy() {
  local port=$1
  for _ in $(seq 1 100); do
    curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "cluster_chaos: server on :$port never became healthy" >&2
  return 1
}

poll_done() { # poll_done PORT ID OUTFILE
  local port=$1 id=$2 out=$3
  for _ in $(seq 1 600); do
    if curl -fsS "http://127.0.0.1:$port/v1/jobs/$id" -o "$out" 2>/dev/null; then
      if grep -q '"status":"done"' "$out"; then return 0; fi
      if grep -q '"status":"failed"' "$out"; then
        echo "cluster_chaos: job failed: $(cat "$out")" >&2
        return 1
      fi
    fi
    sleep 0.2
  done
  echo "cluster_chaos: job $id never completed on :$port" >&2
  return 1
}

start_node() { # start_node INDEX -> appends to PIDS, records NODE_PID
  local i=$1 port=${PORTS[$1]}
  "$BIN" -addr "127.0.0.1:$port" -workers 1 \
    -self "127.0.0.1:$port" -peers "$MEMBERS" \
    -journal "$WORK/journal-$i" -cachedir "$WORK/cache-$i" \
    >"$WORK/node-$i.log" 2>&1 &
  NODE_PID[$i]=$!
  PIDS+=("${NODE_PID[$i]}")
}

echo "cluster_chaos: control run (single node, uninterrupted)"
"$BIN" -addr "127.0.0.1:$CONTROL_PORT" -workers 1 \
  -journal "$WORK/control-journal" -cachedir "$WORK/control-cache" &
CONTROL=$!
PIDS+=("$CONTROL")
wait_healthy "$CONTROL_PORT"
ACCEPT=$(curl -fsS -X POST "http://127.0.0.1:$CONTROL_PORT/v1/simulate" -d "$REQ")
ID=$(echo "$ACCEPT" | grep -o 'sha256:[0-9a-f]*')
[ -n "$ID" ] || { echo "cluster_chaos: no job id in $ACCEPT" >&2; exit 1; }
poll_done "$CONTROL_PORT" "$ID" "$WORK/control.json"
kill -TERM "$CONTROL" && wait "$CONTROL"

echo "cluster_chaos: starting 3-node ring ($MEMBERS)"
declare -a NODE_PID
for i in 0 1 2; do start_node "$i"; done
for p in "${PORTS[@]}"; do wait_healthy "$p"; done
curl -fsS "http://127.0.0.1:${PORTS[0]}/healthz" | grep -q '"members"' || {
  echo "cluster_chaos: /healthz has no ring membership" >&2
  exit 1
}

# The ring (any node's view — they agree) names the owner and the
# cluster-wide failover order for this job id.
RING=$(curl -fsS "http://127.0.0.1:${PORTS[0]}/v1/ring/$ID")
# Parse only the "nodes" array — the envelope's "self" field is also
# an address and must not be mistaken for the owner.
ORDER=$(echo "$RING" | sed -n 's/.*"nodes":\[\([^]]*\)\].*/\1/p' | grep -o '127\.0\.0\.1:[0-9]*')
OWNER_ADDR=$(echo "$ORDER" | head -1)
SURVIVOR_ADDR=$(echo "$ORDER" | sed -n 2p)
THIRD_ADDR=$(echo "$ORDER" | sed -n 3p)
OWNER_PORT=${OWNER_ADDR##*:}
SURVIVOR_PORT=${SURVIVOR_ADDR##*:}
THIRD_PORT=${THIRD_ADDR##*:}
OWNER_IDX=""
for i in 0 1 2; do
  [ "${PORTS[$i]}" = "$OWNER_PORT" ] && OWNER_IDX=$i
done
[ -n "$OWNER_IDX" ] || { echo "cluster_chaos: owner $OWNER_ADDR not in ring" >&2; exit 1; }
echo "cluster_chaos: job $ID is owned by $OWNER_ADDR (failover: $SURVIVOR_ADDR, $THIRD_ADDR)"

echo "cluster_chaos: submitting to the owner, then SIGKILL mid-job"
ACCEPT=$(curl -fsS -X POST "http://127.0.0.1:$OWNER_PORT/v1/simulate" -d "$REQ")
echo "$ACCEPT" | grep -q "$ID" || {
  echo "cluster_chaos: owner submit returned $ACCEPT, want $ID" >&2
  exit 1
}
kill -9 "${NODE_PID[$OWNER_IDX]}"
wait "${NODE_PID[$OWNER_IDX]}" 2>/dev/null || true

echo "cluster_chaos: survivor must answer the dead owner's job"
ACCEPT=$(curl -fsS -X POST "http://127.0.0.1:$SURVIVOR_PORT/v1/simulate" -d "$REQ")
echo "$ACCEPT" | grep -q "$ID" || {
  echo "cluster_chaos: survivor resubmit returned $ACCEPT, want $ID" >&2
  exit 1
}
poll_done "$SURVIVOR_PORT" "$ID" "$WORK/survivor.json"
cmp -s "$WORK/control.json" "$WORK/survivor.json" || {
  echo "cluster_chaos: survivor result differs from control run" >&2
  echo "control:  $(cat "$WORK/control.json")" >&2
  echo "survivor: $(cat "$WORK/survivor.json")" >&2
  exit 1
}
curl -fsS "http://127.0.0.1:$SURVIVOR_PORT/metricsz" >"$WORK/survivor_metricsz.json"
grep -q '"failovers":[1-9]' "$WORK/survivor_metricsz.json" || {
  echo "cluster_chaos: survivor answered but /metricsz shows no failover" >&2
  cat "$WORK/survivor_metricsz.json" >&2
  exit 1
}

echo "cluster_chaos: restarting the owner over its journal"
start_node "$OWNER_IDX"
wait_healthy "$OWNER_PORT"
grep -q 'requeued' "$WORK/node-$OWNER_IDX.log" || {
  echo "cluster_chaos: restarted owner logged no journal recovery:" >&2
  cat "$WORK/node-$OWNER_IDX.log" >&2
  exit 1
}
poll_done "$OWNER_PORT" "$ID" "$WORK/recovered.json"
cmp -s "$WORK/control.json" "$WORK/recovered.json" || {
  echo "cluster_chaos: restarted owner's result differs from control run" >&2
  exit 1
}

echo "cluster_chaos: third node must serve the job via peer cache fill"
poll_done "$THIRD_PORT" "$ID" "$WORK/third.json"
cmp -s "$WORK/control.json" "$WORK/third.json" || {
  echo "cluster_chaos: third node's result differs from control run" >&2
  exit 1
}

# Snapshot every live node's /metricsz for the CI artifact.
{
  echo '{'
  for i in 0 1 2; do
    port=${PORTS[$i]}
    [ "$i" -gt 0 ] && echo ','
    printf '"127.0.0.1:%s": ' "$port"
    curl -fsS "http://127.0.0.1:$port/metricsz" || echo 'null'
  done
  echo '}'
} >"$METRICS_OUT"
echo "cluster_chaos: metricsz snapshot written to $METRICS_OUT"

echo "cluster_chaos: OK — owner killed mid-job, survivors answered byte-identically, ring healed on restart"
