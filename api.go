package starperf

import (
	"starperf/internal/bounds"
	"starperf/internal/cfgerr"
	"starperf/internal/desim"
	"starperf/internal/experiments"
	"starperf/internal/faults"
	"starperf/internal/hypercube"
	"starperf/internal/mesh"
	"starperf/internal/model"
	"starperf/internal/obs"
	"starperf/internal/routing"
	"starperf/internal/stargraph"
	"starperf/internal/topology"
	"starperf/internal/torus"
	"starperf/internal/traffic"
)

// This file is the public face of the library: the implementation
// lives under internal/ (see README for the package map) and is
// re-exported here via type aliases, so downstream modules can import
// just "starperf" and reach every entry point while the internals
// stay free to evolve.
//
// Error contract. Every entry point reports failures in one of three
// documented classes, distinguishable with errors.Is / errors.As:
//
//   - invalid configuration → errors.Is(err, ErrInvalidConfig):
//     out-of-range parameters, unknown kinds, inconsistent options —
//     anywhere the inputs, not the computation, are at fault;
//   - saturation → errors.Is(err, ErrSaturated): the model has no
//     steady state at the requested operating point (Predict only);
//   - unboundable → errors.Is(err, ErrUnboundable): no finite
//     worst-case delay bound exists at the requested operating point
//     (PredictBounds only);
//   - unreachable destination → errors.As(err, *UnreachableError):
//     a traffic pattern addressed a node the fault plan stranded.
//
// Anything else (I/O, internal failures) is a plain error.

// Topology is a direct interconnection network as seen by the
// routing layer, the simulator and the model.
type Topology = topology.Topology

// NewStarGraph returns the n-star S_n (n! nodes) — the paper's
// topology.
func NewStarGraph(n int) (*stargraph.Graph, error) { return stargraph.New(n) }

// NewHypercube returns the binary m-cube Q_m.
func NewHypercube(m int) (*hypercube.Graph, error) { return hypercube.New(m) }

// NewTorus returns the k-ary n-cube (k even).
func NewTorus(k, n int) (*torus.Graph, error) { return torus.New(k, n) }

// NewMesh returns the k-ary n-mesh (simulator and routing only: its
// broken channel symmetry rules out the paper's model — see
// internal/mesh).
func NewMesh(k, n int) (*mesh.Graph, error) { return mesh.New(k, n) }

// RoutingKind selects one of the implemented deadlock-free adaptive
// wormhole routing algorithms.
type RoutingKind = routing.Kind

// The routing algorithms of the negative-hop family (see
// internal/routing for the eligibility rules and deadlock-freedom
// argument).
const (
	NHop        = routing.NHop
	Nbc         = routing.Nbc
	EnhancedNbc = routing.EnhancedNbc
)

// RoutingSpec is an algorithm resolved against a topology and a
// virtual-channel budget.
type RoutingSpec = routing.Spec

// NewRouting resolves kind on top with v virtual channels per
// physical channel.
func NewRouting(kind RoutingKind, top Topology, v int) (RoutingSpec, error) {
	return routing.New(kind, top, v)
}

// SelectionPolicy chooses among free eligible virtual channels in the
// simulator.
type SelectionPolicy = routing.Policy

// The selection policies (PreferClassA is the paper's behaviour).
const (
	PreferClassA      = routing.PreferClassA
	RandomAny         = routing.RandomAny
	LowestEscapeFirst = routing.LowestEscapeFirst
	FirstProfitable   = routing.FirstProfitable
)

// ErrInvalidConfig is the sentinel all configuration-validation
// failures match: errors.Is(err, ErrInvalidConfig) holds for every
// rejected parameter across topologies, routing, the model, the
// simulator, fault plans and the experiment harness.
var ErrInvalidConfig = cfgerr.ErrInvalid

// SimConfig configures one flit-level wormhole simulation; SimResult
// carries its measurements.
type (
	SimConfig = desim.Config
	SimResult = desim.Result
)

// Simulate runs the flit-level simulator (deterministic per config).
func Simulate(cfg SimConfig) (*SimResult, error) { return desim.Run(cfg) }

// Observability re-exports: an Observer attached via
// SimConfig.Observer receives lifecycle events (SimEvent) and a
// per-cycle tick without perturbing the run; Collector is the
// standard implementation in internal/obs (cycle-sampled gauges,
// bounded trace ring with JSONL export, per-hop blocking counters
// aligned with the model's P_block and w̄ terms).
type (
	Observer         = desim.Observer
	SimEvent         = desim.Event
	Collector        = obs.Collector
	CollectorOptions = obs.Options
	ObsSummary       = obs.Summary
)

// NewCollector returns a Collector ready to attach to
// SimConfig.Observer.
func NewCollector(opts CollectorOptions) *Collector { return obs.New(opts) }

// Fault-injection re-exports: a FaultPlan is a deterministic,
// seed-derived set of failed links, failed nodes and transient link
// flaps; a FaultedTopology is a base topology viewed through a plan
// (see internal/faults).
type (
	FaultPlan       = faults.Plan
	FaultOptions    = faults.Options
	FaultedTopology = faults.Faulted
	FaultLink       = faults.Link
	FaultFlap       = faults.Flap
)

// UnreachableError is the typed injection-time failure returned when a
// traffic pattern addresses a node a fault plan has stranded.
type UnreachableError = routing.UnreachableError

// NewFaultPlan draws a deterministic fault plan for top from seed.
// Unless opts.AllowDisconnected is set, plans that would disconnect
// the network are resampled.
func NewFaultPlan(top Topology, seed uint64, opts FaultOptions) (*FaultPlan, error) {
	return faults.NewPlan(top, seed, opts)
}

// ApplyFaults views top through plan, recomputing distances and
// diameter on the degraded graph.
func ApplyFaults(top Topology, plan *FaultPlan) (*FaultedTopology, error) {
	return faults.Apply(top, plan)
}

// SimulateWithFaults runs the simulator on cfg.Top degraded by plan:
// the routing spec is re-resolved against the faulted topology (the
// degraded diameter can exceed the pristine one, raising the escape-VC
// minimum), transient flaps drive channel availability inside the
// event loop, and the progress watchdog reports deadlock or starvation
// through SimResult.Aborted instead of an eternity at the drain limit.
func SimulateWithFaults(cfg SimConfig, plan *FaultPlan) (*SimResult, error) {
	ft, err := faults.Apply(cfg.Top, plan)
	if err != nil {
		return nil, err
	}
	spec, err := routing.New(cfg.Spec.Kind, ft, cfg.Spec.V())
	if err != nil {
		return nil, err
	}
	cfg.Top = ft
	cfg.Spec = spec
	return desim.Run(cfg)
}

// ModelConfig configures one analytical-model evaluation; ModelResult
// carries the prediction. PathStructure abstracts the minimal-path
// combinatorics of a topology.
type (
	ModelConfig   = model.Config
	ModelResult   = model.Result
	PathStructure = model.PathStructure
)

// ErrSaturated is returned by Predict beyond the model's saturation
// point.
var ErrSaturated = model.ErrSaturated

// NewStarPaths, NewCubePaths and NewTorusPaths build the per-topology
// path structures consumed by ModelConfig.
func NewStarPaths(n int) (*model.StarPaths, error) { return model.NewStarPaths(n) }

// NewCubePaths builds the hypercube path structure.
func NewCubePaths(m int) (*model.CubePaths, error) { return model.NewCubePaths(m) }

// NewTorusPaths builds the k-ary n-cube path structure.
func NewTorusPaths(k, n int) (*model.TorusPaths, error) { return model.NewTorusPaths(k, n) }

// Predict evaluates the analytical latency model.
func Predict(cfg ModelConfig) (*ModelResult, error) { return model.Evaluate(cfg) }

// SaturationRate bisects for the largest per-node rate at which the
// model still converges — the predicted capacity of a configuration.
// An invalid base config is an error (matching ErrInvalidConfig)
// rather than a silent "saturates at lo" answer.
func SaturationRate(base ModelConfig, lo, hi float64) (float64, error) {
	return model.SaturationRate(base, lo, hi)
}

// PredictStar evaluates the model in the paper's setting: S_n with V
// virtual channels, M-flit messages at per-node rate λg under
// Enhanced-Nbc.
func PredictStar(n, v, msgLen int, rate float64) (*ModelResult, error) {
	return model.EvaluateStar(n, v, msgLen, rate, routing.EnhancedNbc, model.Window)
}

// Worst-case bound engine re-exports: where Predict answers "what
// latency will a message see on average", PredictBounds answers "what
// latency will a flow never exceed" — deterministic network-calculus
// delay bounds over the same Topology+routing abstractions (see
// internal/bounds for the curve model and composition rules).
type (
	BoundsConfig = bounds.Config
	BoundsResult = bounds.Result
	FlowBound    = bounds.FlowBound
)

// ErrUnboundable is returned by PredictBounds when no finite
// worst-case bound exists at the requested operating point: the
// injection or a channel is saturated, or the cyclic burstiness fixed
// point diverges. It is the bounds counterpart of ErrSaturated and
// strictly more conservative.
var ErrUnboundable = bounds.ErrUnboundable

// PredictBounds computes per-flow-class and worst-flow end-to-end
// delay bounds for adaptive wormhole routing on cfg.Top. Invalid
// configurations match ErrInvalidConfig; operating points with no
// finite bound match ErrUnboundable.
func PredictBounds(cfg BoundsConfig) (*BoundsResult, error) { return bounds.Evaluate(cfg) }

// BoundsCapacity bisects for the largest per-node rate in (lo, hi] at
// which PredictBounds still produces a finite bound — the engine's
// conservative capacity, the bounds counterpart of SaturationRate.
func BoundsCapacity(base BoundsConfig, lo, hi float64) (float64, error) {
	return bounds.Capacity(base, lo, hi)
}

// TrafficPattern maps sources to destinations; LengthDist draws
// message lengths.
type (
	TrafficPattern = traffic.Pattern
	LengthDist     = traffic.LengthDist
)

// The traffic building blocks.
type (
	UniformTraffic = traffic.Uniform
	HotspotTraffic = traffic.Hotspot
	FixedLen       = traffic.FixedLen
	BimodalLen     = traffic.BimodalLen
	UniformLen     = traffic.UniformLen
)

// Experiment harness re-exports: Panel/Series/Point latency curves,
// the Figure-1 regenerator and the throughput sweep. The config-struct
// entry points (Figure1Panel, ThroughputSweep) are the API; the old
// positional forms (Figure1, ThroughputCurve) were deprecated in PR 3
// and removed in PR 10.
type (
	Panel            = experiments.Panel
	SimOptions       = experiments.SimOptions
	ThroughputRow    = experiments.ThroughputRow
	Figure1Config    = experiments.Figure1Config
	ThroughputConfig = experiments.ThroughputConfig
)

// Figure1Panel regenerates one panel of the paper's Figure 1
// (cfg.Panel 'a', 'b' or 'c').
func Figure1Panel(cfg Figure1Config) (*Panel, error) {
	return experiments.Figure1Panel(cfg)
}

// ThroughputSweep sweeps offered load past saturation and reports
// accepted throughput.
func ThroughputSweep(cfg ThroughputConfig) ([]ThroughputRow, error) {
	return experiments.ThroughputSweep(cfg)
}
