package starperf

import (
	"math"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way a downstream
// user would: build the paper's network, predict a latency, simulate
// the same operating point, compare.
func TestFacadeEndToEnd(t *testing.T) {
	star, err := NewStarGraph(5)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewRouting(EnhancedNbc, star, 6)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := PredictStar(5, 6, 32, 0.008)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(SimConfig{
		Top: star, Spec: spec, Policy: PreferClassA,
		Rate: 0.008, MsgLen: 32, Seed: 1,
		WarmupCycles: 4000, MeasureCycles: 15000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(pred.Latency-sim.Latency.Mean()) / sim.Latency.Mean()
	if rel > 0.3 {
		t.Fatalf("model %v vs sim %v: %.0f%% apart", pred.Latency, sim.Latency.Mean(), rel*100)
	}
}

func TestFacadeTopologies(t *testing.T) {
	cube, err := NewHypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	tor, err := NewTorus(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, top := range []Topology{cube, tor} {
		paths, err := pathsFor(top)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Predict(ModelConfig{
			Paths: paths, Top: top, Kind: EnhancedNbc,
			V: 6, MsgLen: 16, Rate: 0.005,
		})
		if err != nil {
			t.Fatalf("%s: %v", top.Name(), err)
		}
		if r.Latency < 17 || r.Latency > 200 {
			t.Fatalf("%s latency %v implausible", top.Name(), r.Latency)
		}
	}
}

func pathsFor(top Topology) (PathStructure, error) {
	switch top.Name() {
	case "Q5":
		return NewCubePaths(5)
	case "T4x2":
		return NewTorusPaths(4, 2)
	}
	return NewStarPaths(5)
}

func TestFacadeSaturation(t *testing.T) {
	_, err := PredictStar(5, 6, 32, 0.1)
	if err == nil {
		t.Fatal("deep overload accepted")
	}
	var is bool
	for e := err; e != nil; {
		if e == ErrSaturated {
			is = true
			break
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			break
		}
		e = u.Unwrap()
	}
	if !is {
		t.Fatalf("error %v does not wrap ErrSaturated", err)
	}
}

func TestFacadeTrafficTypes(t *testing.T) {
	var p TrafficPattern = HotspotTraffic{N: 10, Hot: 0, Fraction: 0.2}
	if p.Name() != "hotspot" {
		t.Fatal("pattern alias broken")
	}
	var l LengthDist = BimodalLen{Short: 8, Long: 24, PLong: 0.5}
	if l.Mean() != 16 {
		t.Fatal("length alias broken")
	}
	_ = UniformTraffic{N: 4}
	_ = FixedLen{M: 3}
	_ = UniformLen{Min: 1, Max: 2}
}

func TestFacadeSaturationRate(t *testing.T) {
	paths, err := NewStarPaths(5)
	if err != nil {
		t.Fatal(err)
	}
	star, _ := NewStarGraph(5)
	sat, err := SaturationRate(ModelConfig{
		Paths: paths, Top: star, Kind: EnhancedNbc, V: 6, MsgLen: 32,
	}, 1e-4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sat < 0.01 || sat > 0.02 {
		t.Fatalf("S5 V=6 M=32 saturation %v outside the expected 0.015 neighbourhood", sat)
	}
}

// TestFacadeFaultInjection exercises the fault-injection entry
// points end to end: draw a plan, degrade the paper's topology, and
// simulate on it — the run must finish deadlock-free and
// deterministically.
func TestFacadeFaultInjection(t *testing.T) {
	star, err := NewStarGraph(4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewFaultPlan(star, 19, FaultOptions{FailLinks: 1})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := ApplyFaults(star, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !ft.Reachability().Connected {
		t.Fatal("NewFaultPlan produced a disconnecting plan")
	}
	spec, err := NewRouting(EnhancedNbc, star, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SimConfig{
		Top: star, Spec: spec, Policy: PreferClassA,
		Rate: 0.02, MsgLen: 16, Seed: 4,
		WarmupCycles: 2000, MeasureCycles: 8000,
	}
	res, err := SimulateWithFaults(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.Aborted {
		t.Fatalf("faulted run not deadlock-free: %s", res.AbortReason)
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries on the degraded star")
	}
	res2, err := SimulateWithFaults(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res2.Delivered ||
		math.Float64bits(res.Latency.Mean()) != math.Float64bits(res2.Latency.Mean()) {
		t.Fatal("same fault seed, diverging results")
	}
	// a hand-written plan that disconnects the network must be
	// rejected unless explicitly allowed
	ring, err := NewHypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	bad := &FaultPlan{Links: []FaultLink{{Node: 0, Dim: 0}, {Node: 0, Dim: 1}},
		Flaps: []FaultFlap{{Node: 1, Dim: 1, Period: 64, Down: 8}}}
	if _, err := ApplyFaults(ring, bad); err == nil {
		t.Fatal("disconnecting plan accepted")
	}
	bad.AllowDisconnected = true
	cut, err := ApplyFaults(ring, bad)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Reachability().Connected {
		t.Fatal("cut ring still reports connected")
	}
	var _ Topology = ft
}
