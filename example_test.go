package starperf_test

import (
	"fmt"

	"starperf"
)

// ExamplePredictStar evaluates the paper's model at a light operating
// point; at vanishing load the latency is M + d̄ + 1 exactly.
func ExamplePredictStar() {
	r, err := starperf.PredictStar(5, 6, 32, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("zero-load latency: %.4f cycles\n", r.Latency)
	// Output:
	// zero-load latency: 36.7143 cycles
}

// ExampleSimulate runs the flit-level simulator deterministically.
func ExampleSimulate() {
	star, _ := starperf.NewStarGraph(4)
	spec, _ := starperf.NewRouting(starperf.EnhancedNbc, star, 4)
	res, err := starperf.Simulate(starperf.SimConfig{
		Top:           star,
		Spec:          spec,
		Rate:          0.002,
		MsgLen:        16,
		Seed:          42,
		WarmupCycles:  2000,
		MeasureCycles: 10000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("drained: %v, deadlocked: %v\n", res.Drained, res.Deadlocked)
	fmt.Printf("hops close to d̄: %v\n", res.HopCount.Mean()-star.AvgDistance() < 0.3)
	// Output:
	// drained: true, deadlocked: false
	// hops close to d̄: true
}

// ExampleNewStarGraph shows the topology facts the model is built on.
func ExampleNewStarGraph() {
	g, _ := starperf.NewStarGraph(5)
	fmt.Printf("%s: %d nodes, degree %d, diameter %d\n",
		g.Name(), g.N(), g.Degree(), g.Diameter())
	// Output:
	// S5: 120 nodes, degree 4, diameter 6
}

// ExamplePredict uses the model on a non-star topology (a torus).
func ExamplePredict() {
	tor, _ := starperf.NewTorus(4, 2)
	paths, _ := starperf.NewTorusPaths(4, 2)
	r, err := starperf.Predict(starperf.ModelConfig{
		Paths:  paths,
		Top:    tor,
		Kind:   starperf.EnhancedNbc,
		V:      4,
		MsgLen: 16,
		Rate:   0,
	})
	if err != nil {
		panic(err)
	}
	// zero load: M + d̄ + 1 with d̄ = 2·(16/15)
	fmt.Printf("T4x2 zero-load latency: %.4f\n", r.Latency)
	// Output:
	// T4x2 zero-load latency: 19.1333
}
